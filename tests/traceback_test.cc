/**
 * @file
 * Correctness gates of the traceback reporting tier.
 *
 * The central contracts:
 *  - hirschbergAlign's score is bit-identical to the full-matrix
 *    smithWatermanAlign on fuzzed pairs, and its CIGAR replays to
 *    exactly that score through the cigarScore oracle;
 *  - the linear-space guarantee holds: peak live DP cells stay
 *    O(min(m, n)) even on long pairs;
 *  - bandedExtendAlign with the X-drop disabled scores
 *    bit-identically to the score-only banded scan;
 *  - blastAlign / blastnAlign reproduce exactly the score their
 *    score-only twins ranked by.
 */

#include <algorithm>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "align/banded.hh"
#include "align/blast.hh"
#include "align/blastn.hh"
#include "align/smith_waterman.hh"
#include "align/traceback/banded_extend.hh"
#include "align/traceback/cigar.hh"
#include "align/traceback/hirschberg.hh"
#include "bio/nucleotide.hh"
#include "bio/random.hh"
#include "bio/scoring.hh"
#include "bio/synthetic.hh"

namespace
{

using namespace bioarch;
using namespace bioarch::align;

bio::Sequence
randomDnaSeq(bio::Rng &rng, int length)
{
    std::vector<bio::Residue> res(static_cast<std::size_t>(length));
    for (auto &r : res)
        r = static_cast<bio::Residue>(rng.below(4));
    return bio::Sequence("DNA", "", std::move(res));
}

bio::Sequence
mutateDnaSeq(bio::Rng &rng, const bio::Sequence &src, double identity)
{
    std::vector<bio::Residue> res;
    res.reserve(src.length());
    for (std::size_t i = 0; i < src.length(); ++i) {
        const double p =
            static_cast<double>(rng.below(1000)) / 1000.0;
        if (p < identity) {
            res.push_back(src[i]);
        } else if (rng.below(8) == 0) {
            // Short indel: skip a base or insert a random one.
            if (rng.below(2) == 0)
                continue;
            res.push_back(static_cast<bio::Residue>(rng.below(4)));
            res.push_back(src[i]);
        } else {
            res.push_back(static_cast<bio::Residue>(rng.below(4)));
        }
    }
    if (res.empty())
        res.push_back(0);
    return bio::Sequence("MUT", "", std::move(res));
}

/** Assert every reporting-tier invariant of one alignment. */
void
checkAlignment(const CigarAlignment &aln, const bio::Sequence &q,
               const bio::Sequence &s,
               const bio::ScoringMatrix &matrix,
               const bio::GapPenalties &gaps)
{
    if (aln.empty()) {
        EXPECT_EQ(aln.score, 0);
        EXPECT_GT(aln.qBegin, aln.qEnd);
        return;
    }
    EXPECT_GT(aln.score, 0);
    EXPECT_GE(aln.qBegin, 0);
    EXPECT_GE(aln.sBegin, 0);
    EXPECT_LT(aln.qEnd, static_cast<int>(q.length()));
    EXPECT_LT(aln.sEnd, static_cast<int>(s.length()));
    EXPECT_LE(aln.qBegin, aln.qEnd);
    EXPECT_LE(aln.sBegin, aln.sEnd);
    EXPECT_EQ(cigarQuerySpan(aln.cigar), aln.qEnd - aln.qBegin + 1);
    EXPECT_EQ(cigarSubjectSpan(aln.cigar),
              aln.sEnd - aln.sBegin + 1);
    EXPECT_GE(aln.identities, 0);
    EXPECT_LE(aln.identities, aln.columns);
    // The oracle: the CIGAR must replay to exactly the reported
    // score (throws on any out-of-bounds or span inconsistency).
    EXPECT_EQ(cigarScore(aln, q, s, matrix, gaps), aln.score);
}

const std::vector<bio::GapPenalties> &
extremeGaps()
{
    // Default, near-free open, brutal open, linear-ish heavy extend.
    static const std::vector<bio::GapPenalties> gaps = {
        {10, 1}, {1, 1}, {40, 2}, {0, 5}};
    return gaps;
}

TEST(Cigar, AppendMergesAdjacentRunsAndFormats)
{
    Cigar c;
    cigarAppend(c, 'M', 3);
    cigarAppend(c, 'M', 2);
    cigarAppend(c, 'I', 1);
    cigarAppend(c, 'I', 4);
    cigarAppend(c, 'D', 2);
    ASSERT_EQ(c.size(), 3u);
    EXPECT_EQ(cigarToString(c), "5M5I2D");
    EXPECT_EQ(cigarQuerySpan(c), 10);
    EXPECT_EQ(cigarSubjectSpan(c), 7);
}

TEST(Cigar, ScoreOracleRejectsMalformedAlignments)
{
    bio::Rng rng(1);
    const bio::Sequence q = bio::makeRandomSequence(rng, 20);
    const bio::Sequence s = bio::makeRandomSequence(rng, 20);
    const bio::GapPenalties gaps;
    const bio::ScoringMatrix &m = bio::blosum62();

    CigarAlignment walk_out;
    walk_out.qBegin = 15;
    walk_out.qEnd = 24;
    walk_out.sBegin = 0;
    walk_out.sEnd = 9;
    walk_out.cigar = {{'M', 10}};
    EXPECT_THROW(cigarScore(walk_out, q, s, m, gaps),
                 std::invalid_argument);

    CigarAlignment span_lie;
    span_lie.qBegin = 0;
    span_lie.qEnd = 9;
    span_lie.sBegin = 0;
    span_lie.sEnd = 8; // CIGAR consumes 10 subject residues
    span_lie.cigar = {{'M', 10}};
    EXPECT_THROW(cigarScore(span_lie, q, s, m, gaps),
                 std::invalid_argument);

    CigarAlignment bad_op;
    bad_op.qBegin = 0;
    bad_op.qEnd = 1;
    bad_op.sBegin = 0;
    bad_op.sEnd = 1;
    bad_op.cigar = {{'X', 2}};
    EXPECT_THROW(cigarScore(bad_op, q, s, m, gaps),
                 std::invalid_argument);
}

TEST(Cigar, ScoreChargesSplitGapRunsAsOneGap)
{
    // Two adjacent I runs must cost one open + 3 extends, exactly
    // like the merged 3I — the oracle must not double-charge the
    // open that Myers-Miller boundary splits would expose.
    bio::Rng rng(2);
    const bio::Sequence q = bio::makeRandomSequence(rng, 5);
    const bio::Sequence s = bio::makeRandomSequence(rng, 2);
    const bio::GapPenalties gaps{10, 1};
    const bio::ScoringMatrix &m = bio::blosum62();

    CigarAlignment split;
    split.qBegin = 0;
    split.qEnd = 4;
    split.sBegin = 0;
    split.sEnd = 1;
    split.cigar = {{'M', 1}, {'I', 1}, {'I', 2}, {'M', 1}};
    CigarAlignment merged = split;
    merged.cigar = {{'M', 1}, {'I', 3}, {'M', 1}};
    EXPECT_EQ(cigarScore(split, q, s, m, gaps),
              cigarScore(merged, q, s, m, gaps));
}

TEST(Hirschberg, MatchesFullMatrixOnFuzzedProteinPairs)
{
    bio::Rng rng(0xA11C0DE);
    const bio::ScoringMatrix &matrix = bio::blosum62();
    for (int iter = 0; iter < 500; ++iter) {
        const int m = 5 + static_cast<int>(rng.below(116));
        const bio::Sequence q = bio::makeRandomSequence(rng, m);
        // Alternate unrelated and homologous subjects so both the
        // score-0 path and long gapped alignments are exercised.
        const bio::Sequence s = (iter % 2 == 0)
            ? bio::makeRandomSequence(
                  rng, 5 + static_cast<int>(rng.below(116)))
            : bio::mutate(rng, q, 0.4 + 0.05 * (iter % 10), "HOM",
                          "");
        const bio::GapPenalties gaps =
            extremeGaps()[static_cast<std::size_t>(iter)
                          % extremeGaps().size()];

        const Alignment full =
            smithWatermanAlign(q, s, matrix, gaps);
        TracebackStats stats;
        const CigarAlignment aln =
            hirschbergAlign(q, s, matrix, gaps, &stats);
        ASSERT_EQ(aln.score, full.score)
            << "pair " << iter << " open=" << gaps.open
            << " extend=" << gaps.extend;
        checkAlignment(aln, q, s, matrix, gaps);
        const std::uint64_t short_side = std::min(q.length(),
                                                  s.length());
        EXPECT_LE(stats.peakCells, 16 * (short_side + 1))
            << "linear-space bound violated at pair " << iter;
    }
}

TEST(Hirschberg, MatchesFullMatrixOnFuzzedNucleotidePairs)
{
    bio::Rng rng(0xD7A);
    const bio::ScoringMatrix m13 = bio::makeMatchMismatch(1, -3);
    const bio::ScoringMatrix m24 = bio::makeMatchMismatch(2, -4);
    for (int iter = 0; iter < 500; ++iter) {
        const int m = 8 + static_cast<int>(rng.below(150));
        const bio::Sequence q = randomDnaSeq(rng, m);
        const bio::Sequence s = (iter % 2 == 0)
            ? randomDnaSeq(rng,
                           8 + static_cast<int>(rng.below(150)))
            : mutateDnaSeq(rng, q, 0.6 + 0.04 * (iter % 10));
        const bio::ScoringMatrix &matrix =
            (iter % 4 < 2) ? m13 : m24;
        const bio::GapPenalties gaps =
            extremeGaps()[static_cast<std::size_t>(iter)
                          % extremeGaps().size()];

        const Alignment full =
            smithWatermanAlign(q, s, matrix, gaps);
        TracebackStats stats;
        const CigarAlignment aln =
            hirschbergAlign(q, s, matrix, gaps, &stats);
        ASSERT_EQ(aln.score, full.score) << "pair " << iter;
        checkAlignment(aln, q, s, matrix, gaps);
        const std::uint64_t short_side = std::min(q.length(),
                                                  s.length());
        EXPECT_LE(stats.peakCells, 16 * (short_side + 1));
    }
}

TEST(Hirschberg, AnchoredMatchesUnanchoredOnFuzzedPairs)
{
    bio::Rng rng(0xBEEF);
    const bio::ScoringMatrix &matrix = bio::blosum62();
    for (int iter = 0; iter < 200; ++iter) {
        const int m = 5 + static_cast<int>(rng.below(116));
        const bio::Sequence q = bio::makeRandomSequence(rng, m);
        const bio::Sequence s = (iter % 2 == 0)
            ? bio::makeRandomSequence(
                  rng, 5 + static_cast<int>(rng.below(116)))
            : bio::mutate(rng, q, 0.4 + 0.05 * (iter % 10), "HOM",
                          "");
        const bio::GapPenalties gaps =
            extremeGaps()[static_cast<std::size_t>(iter)
                          % extremeGaps().size()];
        const Alignment full =
            smithWatermanAlign(q, s, matrix, gaps);
        if (full.score <= 0)
            continue;
        // Full anchor (both ends from the exact scan), then the
        // half anchors the striped kernels actually produce
        // (queryEnd unknown), then an out-of-range anchor; every
        // variant must reproduce the optimal score and replay.
        const int anchors[][2] = {
            {full.queryEnd, full.subjectEnd},
            {-1, full.subjectEnd},
            {full.queryEnd, -1},
            {static_cast<int>(q.length()) + 7, -1},
        };
        for (const auto &anchor : anchors) {
            const CigarAlignment aln = hirschbergAlignAnchored(
                q.residues().data(), q.length(),
                s.residues().data(), s.length(), anchor[0],
                anchor[1], matrix, gaps);
            ASSERT_EQ(aln.score, full.score)
                << "pair " << iter << " anchor " << anchor[0]
                << "," << anchor[1];
            checkAlignment(aln, q, s, matrix, gaps);
        }
    }
}

TEST(Hirschberg, LinearSpaceHoldsOnLongPairs)
{
    bio::Rng rng(0x10E6);
    const bio::Sequence q = bio::makeRandomSequence(rng, 3000);
    const bio::Sequence s = bio::mutate(rng, q, 0.7, "HOM", "");
    const bio::ScoringMatrix &matrix = bio::blosum62();
    const bio::GapPenalties gaps;

    TracebackStats stats;
    const CigarAlignment aln =
        hirschbergAlign(q, s, matrix, gaps, &stats);
    ASSERT_FALSE(aln.empty());
    checkAlignment(aln, q, s, matrix, gaps);

    const std::uint64_t short_side = std::min(q.length(),
                                              s.length());
    const std::uint64_t full_matrix =
        static_cast<std::uint64_t>(q.length()) * s.length();
    // The whole point of the tier: peak live DP state is a few
    // linear arrays, never the full matrix.
    EXPECT_LE(stats.peakCells, 16 * (short_side + 1));
    EXPECT_LT(stats.peakCells, full_matrix / 100);
    // And the divide-and-conquer roughly doubles the cell count of
    // a single pass (sum of halves telescopes to <= 2mn plus the
    // end/begin passes).
    EXPECT_GE(stats.totalCells, full_matrix);
    EXPECT_LE(stats.totalCells, 5 * full_matrix);
}

TEST(Hirschberg, DegenerateInputs)
{
    const bio::ScoringMatrix &matrix = bio::blosum62();
    const bio::GapPenalties gaps;
    const bio::Sequence empty("E", "", std::vector<bio::Residue>{});
    const bio::Sequence one("O", "", std::vector<bio::Residue>{5});

    EXPECT_TRUE(
        hirschbergAlign(empty, one, matrix, gaps).empty());
    EXPECT_TRUE(
        hirschbergAlign(one, empty, matrix, gaps).empty());

    const CigarAlignment self =
        hirschbergAlign(one, one, matrix, gaps);
    ASSERT_FALSE(self.empty());
    EXPECT_EQ(self.cigar, (Cigar{{'M', 1}}));
    EXPECT_EQ(self.score, matrix.score(5, 5));
    EXPECT_EQ(self.identities, 1);
}

TEST(BandedExtend, ScoreMatchesScoreOnlyBandedScan)
{
    bio::Rng rng(0xBA2D);
    const bio::ScoringMatrix &matrix = bio::blosum62();
    for (int iter = 0; iter < 200; ++iter) {
        const int m = 10 + static_cast<int>(rng.below(100));
        const bio::Sequence q = bio::makeRandomSequence(rng, m);
        const bio::Sequence s = (iter % 2 == 0)
            ? bio::makeRandomSequence(
                  rng, 10 + static_cast<int>(rng.below(100)))
            : bio::mutate(rng, q, 0.5, "HOM", "");
        const int n = static_cast<int>(s.length());
        const int center =
            static_cast<int>(rng.below(
                static_cast<std::uint64_t>(m + n - 1)))
            - (m - 1);
        const int half_width = static_cast<int>(rng.below(24));
        const bio::GapPenalties gaps =
            extremeGaps()[static_cast<std::size_t>(iter)
                          % extremeGaps().size()];

        const LocalScore ref = bandedSmithWaterman(
            q, s, matrix, gaps, center, half_width);
        TracebackStats stats;
        const CigarAlignment aln = bandedExtendAlign(
            q, s, matrix, gaps, center, half_width, -1, &stats);
        ASSERT_EQ(aln.score, std::max(ref.score, 0))
            << "pair " << iter << " center=" << center
            << " half_width=" << half_width;
        if (!aln.empty()) {
            checkAlignment(aln, q, s, matrix, gaps);
            EXPECT_EQ(aln.qEnd, ref.queryEnd);
            EXPECT_EQ(aln.sEnd, ref.subjectEnd);
            // Every aligned cell sits inside the band.
            EXPECT_LE(std::abs((aln.sBegin - aln.qBegin) - center),
                      half_width);
            EXPECT_LE(std::abs((aln.sEnd - aln.qEnd) - center),
                      half_width);
        }
    }
}

TEST(BandedExtend, XdropNeverImprovesAndKeepsStrongHits)
{
    bio::Rng rng(0x00DD);
    const bio::ScoringMatrix &matrix = bio::blosum62();
    const bio::GapPenalties gaps;
    for (int iter = 0; iter < 50; ++iter) {
        const bio::Sequence q = bio::makeRandomSequence(rng, 80);
        const bio::Sequence s = bio::mutate(rng, q, 0.8, "H", "");
        const CigarAlignment full = bandedExtendAlign(
            q, s, matrix, gaps, 0, 16, -1);
        const CigarAlignment dropped = bandedExtendAlign(
            q, s, matrix, gaps, 0, 16, 30);
        EXPECT_LE(dropped.score, full.score);
        if (!dropped.empty())
            checkAlignment(dropped, q, s, matrix, gaps);
    }
}

TEST(BlastAlign, ScoreMatchesBlastScanExactly)
{
    bio::Rng rng(0xB1A57);
    const bio::ScoringMatrix &matrix = bio::blosum62();
    const bio::GapPenalties gaps;
    const BlastParams params;
    int traced = 0;
    for (int iter = 0; iter < 60; ++iter) {
        const bio::Sequence q = bio::makeRandomSequence(rng, 120);
        const NeighborhoodIndex index(q, matrix, params);
        const bio::Sequence s = (iter % 3 == 0)
            ? bio::makeRandomSequence(rng, 150)
            : bio::mutate(rng, q, 0.45 + 0.05 * (iter % 8), "H",
                          "");
        const BlastScores scan =
            blastScan(index, q, s, matrix, gaps, params);
        TracebackStats stats;
        const CigarAlignment aln = blastAlign(
            index, q, s, matrix, gaps, params, nullptr, -1, &stats);
        if (aln.empty()) {
            EXPECT_EQ(scan.score, 0) << "pair " << iter;
            continue;
        }
        ++traced;
        EXPECT_EQ(aln.score, scan.score) << "pair " << iter;
        checkAlignment(aln, q, s, matrix, gaps);
    }
    EXPECT_GT(traced, 10); // the fuzz must actually hit the gapped path
}

TEST(BlastnScan, ResidueSubjectMatchesPackedSubject)
{
    bio::Rng rng(0xDAA);
    const BlastnParams params;
    for (int iter = 0; iter < 40; ++iter) {
        const bio::PackedDna q = bio::makeRandomDna(rng, 300);
        const bio::PackedDna sp = (iter % 2 == 0)
            ? bio::makeRandomDna(rng, 400)
            : bio::mutateDna(rng, q, 0.85, "H");
        const DnaWordIndex index(q, params.wordSize);

        std::vector<bio::Residue> sr(sp.length());
        for (std::size_t i = 0; i < sp.length(); ++i)
            sr[i] = static_cast<bio::Residue>(sp[i]);

        std::uint64_t cells_packed = 0;
        std::uint64_t cells_res = 0;
        const BlastnScores a =
            blastnScan(index, q, sp, params, &cells_packed);
        const BlastnScores b = blastnScan(
            index, q, sr.data(), sr.size(), params, &cells_res);
        EXPECT_EQ(a.score, b.score);
        EXPECT_EQ(a.bestUngapped, b.bestUngapped);
        EXPECT_EQ(a.wordHits, b.wordHits);
        EXPECT_EQ(a.extensionsTried, b.extensionsTried);
        EXPECT_EQ(a.gappedExtensions, b.gappedExtensions);
        EXPECT_EQ(cells_packed, cells_res);
    }
}

TEST(BlastnAlign, ScoreMatchesBlastnScanExactly)
{
    bio::Rng rng(0xDA2);
    const BlastnParams params;
    const bio::ScoringMatrix mm =
        bio::makeMatchMismatch(params.matchScore,
                               params.mismatchScore);
    const bio::GapPenalties gaps{params.gapOpen, params.gapExtend};
    int traced = 0;
    for (int iter = 0; iter < 40; ++iter) {
        const bio::PackedDna q = bio::makeRandomDna(rng, 400);
        const bio::PackedDna sp = (iter % 3 == 0)
            ? bio::makeRandomDna(rng, 500)
            : bio::mutateDna(rng, q, 0.8 + 0.02 * (iter % 8), "H");
        const DnaWordIndex index(q, params.wordSize);
        std::vector<bio::Residue> sr(sp.length());
        for (std::size_t i = 0; i < sp.length(); ++i)
            sr[i] = static_cast<bio::Residue>(sp[i]);

        const BlastnScores scan =
            blastnScan(index, q, sp, params);
        TracebackStats stats;
        const CigarAlignment aln =
            blastnAlign(index, q, sr.data(), sr.size(), params,
                        nullptr, -1, &stats);
        if (aln.empty()) {
            EXPECT_EQ(scan.score, 0) << "pair " << iter;
            continue;
        }
        ++traced;
        EXPECT_EQ(aln.score, scan.score) << "pair " << iter;
        // Replay the CIGAR against the *decoded* query and the
        // residue subject — spans are absolute.
        std::vector<bio::Residue> qr(q.length());
        for (std::size_t i = 0; i < q.length(); ++i)
            qr[i] = static_cast<bio::Residue>(q[i]);
        const bio::Sequence qs("Q", "", std::move(qr));
        const bio::Sequence ss("S", "", std::move(sr));
        checkAlignment(aln, qs, ss, mm, gaps);
    }
    EXPECT_GT(traced, 10);
}

} // namespace
