/**
 * @file
 * End-to-end integration tests: the qualitative claims of every
 * figure in the paper's evaluation, asserted on freshly generated
 * traces and simulations. These are the "shape" checks DESIGN.md
 * promises — who wins, by roughly what factor, where the
 * crossovers fall.
 */

#include <gtest/gtest.h>

#include "core/suite.hh"
#include "sim/bpred.hh"

namespace
{

using namespace bioarch;
using kernels::Workload;

/** Shared suite (trace generation is the expensive part). */
core::WorkloadSuite &
suite()
{
    static core::WorkloadSuite s{[] {
        kernels::TraceSpec spec;
        spec.dbSequences = 8;
        return spec;
    }()};
    return s;
}

sim::SimStats
simulate(Workload w, const sim::SimConfig &cfg)
{
    return core::simulate(suite().trace(w), cfg);
}

// ---- Fig. 2: trauma structure ------------------------------------

TEST(Fig2, SsearchIsBranchBound)
{
    const sim::SimConfig cfg; // 4-way, me1, real predictor
    const sim::SimStats stats = simulate(Workload::Ssearch34, cfg);
    const auto &t = stats.traumas;
    // Branch mispredictions are a leading stall source, well ahead
    // of any memory trauma.
    EXPECT_GT(t.get(sim::Trauma::IfPred),
              5 * (t.get(sim::Trauma::MmDl1)
                   + t.get(sim::Trauma::MmDl2)));
    EXPECT_GT(t.get(sim::Trauma::RgFix), 0u);
}

TEST(Fig2, SimdAppsStallOnVectorDependencies)
{
    const sim::SimConfig cfg;
    const sim::SimStats s128 = simulate(Workload::SwVmx128, cfg);
    const sim::SimStats s256 = simulate(Workload::SwVmx256, cfg);
    // RG_VI dominates vmx128.
    EXPECT_EQ(s128.traumas.dominant(), sim::Trauma::RgVi);
    // For vmx256 the permute dependencies grow in importance
    // (paper: "dependencies on SIMD permutation operations become
    // more important").
    const double vper_share_128 =
        static_cast<double>(s128.traumas.get(sim::Trauma::RgVper))
        / static_cast<double>(s128.traumas.total());
    const double vper_share_256 =
        static_cast<double>(s256.traumas.get(sim::Trauma::RgVper))
        / static_cast<double>(s256.traumas.total());
    EXPECT_GT(vper_share_256, vper_share_128);
    // Branch traumas are negligible for the SIMD codes.
    EXPECT_LT(s128.traumas.get(sim::Trauma::IfPred),
              s128.traumas.total() / 50);
}

TEST(Fig2, BlastStallsOnIntegerChainsAndMemory)
{
    const sim::SimConfig cfg;
    const sim::SimStats stats = simulate(Workload::Blast, cfg);
    const auto &t = stats.traumas;
    // rg_fix leads; memory traumas are substantial (unlike the
    // other applications).
    EXPECT_EQ(t.dominant(), sim::Trauma::RgFix);
    const std::uint64_t mem =
        t.get(sim::Trauma::MmDl1) + t.get(sim::Trauma::MmDl2)
        + t.get(sim::Trauma::RgMem);
    EXPECT_GT(mem, t.total() / 10);
}

// ---- Figs. 3/4: memory-configuration sweep -----------------------

TEST(Fig4, OnlySimdCodesExceedTwoIpc)
{
    const sim::SimConfig cfg; // 4-way, me1
    EXPECT_GT(simulate(Workload::SwVmx128, cfg).ipc(), 2.0);
    EXPECT_GT(simulate(Workload::SwVmx256, cfg).ipc(), 2.0);
    EXPECT_LT(simulate(Workload::Ssearch34, cfg).ipc(), 2.0);
    EXPECT_LT(simulate(Workload::Fasta34, cfg).ipc(), 2.0);
    EXPECT_LT(simulate(Workload::Blast, cfg).ipc(), 2.0);
}

TEST(Fig4, ScalarAppsAreInsensitiveToMemorySize)
{
    sim::SimConfig small; // me1
    sim::SimConfig ideal;
    ideal.memory = sim::memoryInf();
    for (const Workload w :
         {Workload::Ssearch34, Workload::Fasta34}) {
        const double ipc_small = simulate(w, small).ipc();
        const double ipc_ideal = simulate(w, ideal).ipc();
        EXPECT_LT(ipc_ideal / ipc_small, 1.10)
            << kernels::workloadName(w);
    }
}

TEST(Fig4, BlastLosesHeavilyWithSmallCaches)
{
    sim::SimConfig small; // me1: 32K/32K/1M
    sim::SimConfig ideal;
    ideal.memory = sim::memoryInf();
    const double ipc_small = simulate(Workload::Blast, small).ipc();
    const double ipc_ideal = simulate(Workload::Blast, ideal).ipc();
    // Paper: 52% slowdown. Assert a substantial (>25%) loss — by
    // far the largest of the five applications.
    EXPECT_LT(ipc_small, 0.75 * ipc_ideal);
}

TEST(Fig3, WiderCoresHelpModestly)
{
    sim::SimConfig w4;
    sim::SimConfig w8;
    w8.core = sim::core8Way();
    for (const Workload w : kernels::allWorkloads) {
        const std::uint64_t c4 = simulate(w, w4).cycles;
        const std::uint64_t c8 = simulate(w, w8).cycles;
        EXPECT_LE(c8, c4) << kernels::workloadName(w);
        // Nothing doubles: the paper reports ~8% gains.
        EXPECT_GT(static_cast<double>(c8),
                  0.5 * static_cast<double>(c4))
            << kernels::workloadName(w);
    }
}

// ---- Fig. 5: cache-size sweep ------------------------------------

TEST(Fig5, BlastHasTheWorstMissRateAtEverySize)
{
    for (const std::int64_t kb : {8, 32, 128}) {
        sim::SimConfig cfg;
        cfg.memory = sim::memoryMe2();
        cfg.memory.dl1.sizeBytes = kb * 1024;
        const double blast =
            simulate(Workload::Blast, cfg).dl1MissRate();
        for (const Workload w :
             {Workload::Ssearch34, Workload::Fasta34}) {
            EXPECT_GT(blast, simulate(w, cfg).dl1MissRate())
                << kb << "K vs " << kernels::workloadName(w);
        }
    }
}

TEST(Fig5, BlastStillMissesAtThirtyTwoK)
{
    sim::SimConfig cfg; // me1 = 32K DL1
    const double miss = simulate(Workload::Blast, cfg).dl1MissRate();
    // Paper: "close to 4%".
    EXPECT_GT(miss, 0.01);
    EXPECT_LT(miss, 0.10);
}

TEST(Fig5, SsearchFitsInTinyCaches)
{
    sim::SimConfig cfg;
    cfg.memory.dl1.sizeBytes = 4 * 1024;
    const double miss =
        simulate(Workload::Ssearch34, cfg).dl1MissRate();
    EXPECT_LT(miss, 0.01);
}

TEST(Fig5, SimdCodesGainMostFromFittingWorkingSet)
{
    sim::SimConfig small;
    small.memory.dl1.sizeBytes = 1024;
    sim::SimConfig big;
    big.memory.dl1.sizeBytes = 16 * 1024;
    auto gain = [&](Workload w) {
        return simulate(w, big).ipc() / simulate(w, small).ipc();
    };
    // SIMD codes gain the most once profile + row buffers fit
    // (the paper reports the largest growth for them too).
    const double simd128 = gain(Workload::SwVmx128);
    const double simd256 = gain(Workload::SwVmx256);
    EXPECT_GT(simd128, 1.08);
    EXPECT_GT(simd256, 1.08);
    EXPECT_GT(simd128, gain(Workload::Ssearch34));
    EXPECT_GT(simd256, gain(Workload::Ssearch34));
}

// ---- Fig. 6: associativity ---------------------------------------

TEST(Fig6, AssociativityOnlyMattersForBlast)
{
    sim::SimConfig direct;
    direct.memory.dl1.associativity = 1;
    sim::SimConfig assoc8;
    assoc8.memory.dl1.associativity = 8;

    // BLAST's misses drop with associativity...
    const double blast_dm =
        simulate(Workload::Blast, direct).dl1MissRate();
    const double blast_a8 =
        simulate(Workload::Blast, assoc8).dl1MissRate();
    EXPECT_LT(blast_a8, blast_dm);
    // ...but its IPC barely moves (32K is simply too small).
    const double ipc_dm = simulate(Workload::Blast, direct).ipc();
    const double ipc_a8 = simulate(Workload::Blast, assoc8).ipc();
    EXPECT_LT(std::abs(ipc_a8 - ipc_dm) / ipc_dm, 0.15);
}

// ---- Fig. 7: L1 latency ------------------------------------------

TEST(Fig7, SimdCodesAreMostLatencySensitive)
{
    auto loss = [&](Workload w) {
        sim::SimConfig fast;
        sim::SimConfig slow;
        slow.memory.dl1.latency = 10;
        const double f = simulate(w, fast).ipc();
        const double s = simulate(w, slow).ipc();
        return 1.0 - s / f;
    };
    const double simd = loss(Workload::SwVmx128);
    EXPECT_GT(simd, loss(Workload::Ssearch34));
    EXPECT_GT(simd, loss(Workload::Fasta34));
    EXPECT_GT(simd, 0.10);
}

// ---- Fig. 8: 256-bit speedup -------------------------------------

TEST(Fig8, WideRegistersGainFarLessThanInstructionReduction)
{
    const sim::SimConfig cfg; // 4-way
    const auto &t128 = suite().trace(Workload::SwVmx128);
    const auto &t256 = suite().trace(Workload::SwVmx256);
    const double instr_ratio = static_cast<double>(t256.size())
        / static_cast<double>(t128.size());
    const double speedup =
        static_cast<double>(core::simulate(t128, cfg).cycles)
        / static_cast<double>(core::simulate(t256, cfg).cycles);
    // ~17% fewer instructions...
    EXPECT_LT(instr_ratio, 0.95);
    // ...a real but sub-proportional speedup (paper: 18% fewer
    // instructions -> 9% time).
    EXPECT_GT(speedup, 1.0);
    EXPECT_LT(speedup, 1.0 / instr_ratio + 0.6);
    EXPECT_LT(speedup, 1.8);
}

TEST(Fig8, WideVersionStaysFasterWithLoadPenalty)
{
    const auto &t128 = suite().trace(Workload::SwVmx128);
    const auto &t256 = suite().trace(Workload::SwVmx256);
    sim::SimConfig cfg;
    const std::uint64_t base = core::simulate(t128, cfg).cycles;
    sim::SimConfig penal;
    penal.memory.wideVectorLoadPenalty = 1;
    const std::uint64_t fast = core::simulate(t256, cfg).cycles;
    const std::uint64_t slow = core::simulate(t256, penal).cycles;
    EXPECT_GE(slow, fast); // the penalty costs something
    // Paper: "even with the added cycle latency, the 256-bit
    // version is still 5% faster".
    EXPECT_GT(static_cast<double>(base) / static_cast<double>(slow),
              1.0);
}

// ---- Fig. 9: perfect branch prediction ---------------------------

TEST(Fig9, PerfectPredictionTransformsScalarAppsOnly)
{
    sim::SimConfig real;
    sim::SimConfig perfect;
    perfect.bpred.kind = sim::PredictorKind::Perfect;

    auto gain = [&](Workload w) {
        return simulate(w, perfect).ipc() / simulate(w, real).ipc();
    };
    // Big wins for the branchy applications...
    EXPECT_GT(gain(Workload::Ssearch34), 1.4);
    EXPECT_GT(gain(Workload::Fasta34), 1.3);
    EXPECT_GT(gain(Workload::Blast), 1.1);
    // ...and nearly nothing for the SIMD codes.
    EXPECT_LT(gain(Workload::SwVmx128), 1.05);
    EXPECT_LT(gain(Workload::SwVmx256), 1.05);
}

// ---- Fig. 10: queue occupancy ------------------------------------

TEST(Fig10, FastaQueuesNearEmptySimdViQueueBusy)
{
    const sim::SimConfig cfg;
    const sim::SimStats fasta = simulate(Workload::Fasta34, cfg);
    const sim::SimStats simd = simulate(Workload::SwVmx128, cfg);

    const double fasta_fix = sim::SimStats::meanOccupancy(
        fasta.queueOccupancy[static_cast<int>(sim::FuClass::Fix)]);
    const double simd_vi = sim::SimStats::meanOccupancy(
        simd.queueOccupancy[static_cast<int>(sim::FuClass::Vi)]);
    // FASTA's flush-limited front end keeps queues shallow; the
    // SIMD code keeps a deep VI queue.
    EXPECT_LT(fasta_fix, 8.0);
    EXPECT_GT(simd_vi, fasta_fix);
    EXPECT_GT(simd_vi, 4.0);

    // And many more instructions in flight for the SIMD code.
    EXPECT_GT(
        sim::SimStats::meanOccupancy(simd.inflightOccupancy),
        sim::SimStats::meanOccupancy(fasta.inflightOccupancy));
}

// ---- Fig. 11: predictor sweep ------------------------------------

TEST(Fig11, AccuracyPlateausBelowPerfect)
{
    const trace::Trace &tr = suite().trace(Workload::Ssearch34);
    auto accuracy = [&](sim::PredictorKind kind, int entries) {
        sim::BranchPredictorConfig cfg;
        cfg.kind = kind;
        cfg.tableEntries = entries;
        auto p = sim::makePredictor(cfg);
        for (const isa::Inst &inst : tr)
            if (inst.isBranch() && inst.conditional)
                p->predictAndUpdate(inst.pc, inst.taken);
        return p->accuracy();
    };

    // Near-plateau by 512 entries...
    const double small =
        accuracy(sim::PredictorKind::Combined, 512);
    const double large =
        accuracy(sim::PredictorKind::Combined, 32768);
    EXPECT_LT(large - small, 0.02);
    // ...and the plateau is well below 100% (data-dependent
    // branches), for every strategy.
    for (const sim::PredictorKind kind :
         {sim::PredictorKind::Bimodal, sim::PredictorKind::Gshare,
          sim::PredictorKind::Combined}) {
        const double acc = accuracy(kind, 16384);
        EXPECT_GT(acc, 0.75);
        EXPECT_LT(acc, 0.97);
    }
}

} // namespace
