/**
 * @file
 * Tests for the blastn instrumented twin and the remaining traced
 * lane variants: score equality with the library implementations
 * and the expected memory character.
 */

#include <gtest/gtest.h>

#include <unordered_set>

#include "align/blastn.hh"
#include "align/smith_waterman.hh"
#include "kernels/blastn_traced.hh"
#include "kernels/sw_vmx_traced.hh"
#include "kernels/workload.hh"
#include "bio/random.hh"
#include "bio/scoring.hh"

namespace
{

using namespace bioarch;

TEST(BlastnTraced, ScoresEqualLibrary)
{
    bio::Rng rng(0xDA);
    const bio::PackedDna query = bio::makeRandomDna(rng, 400, "Q");
    const bio::DnaDatabase db =
        bio::makeDnaDatabase(6, 200, 700, query, 2, 0xDA);

    const kernels::BlastnTracedRun run =
        kernels::traceBlastn(query, db);
    const align::DnaWordIndex index(query, 8);
    ASSERT_EQ(run.scores.size(), db.size());
    for (std::size_t i = 0; i < db.size(); ++i) {
        const align::BlastnScores ref =
            align::blastnScan(index, query, db[i], {});
        EXPECT_EQ(run.scores[i], ref.score) << "sequence " << i;
    }
    EXPECT_GT(run.trace.size(), 0u);
}

TEST(BlastnTraced, TouchesTheBigWordTable)
{
    bio::Rng rng(0xDB);
    const bio::PackedDna query = bio::makeRandomDna(rng, 500, "Q");
    const bio::DnaDatabase db =
        bio::makeDnaDatabase(4, 400, 800, query, 1, 0xDB);
    const kernels::BlastnTracedRun run =
        kernels::traceBlastn(query, db);

    // The scan's table lookups must span far more than 32K of
    // distinct lines (the 4^8-entry heads array).
    std::unordered_set<isa::Addr> lines;
    for (const isa::Inst &inst : run.trace)
        if (inst.isLoad())
            lines.insert(inst.addr / 128);
    EXPECT_GT(lines.size() * 128, 64u * 1024u);
}

TEST(BlastnTraced, MixIsAluHeavyAndBranchy)
{
    bio::Rng rng(0xDC);
    const bio::PackedDna query = bio::makeRandomDna(rng, 400, "Q");
    const bio::DnaDatabase db =
        bio::makeDnaDatabase(4, 300, 600, query, 1, 0xDC);
    const trace::InstructionMix mix =
        kernels::traceBlastn(query, db).trace.mix();
    EXPECT_GT(mix.fraction(isa::OpClass::IntAlu), 0.40);
    EXPECT_GT(mix.ctrlFraction(), 0.12);
    EXPECT_GT(mix.loadFraction(), 0.10);
    EXPECT_EQ(mix.count(isa::OpClass::VecSimple), 0u);
}

TEST(SwVmxTraced, AblationLaneCountsAlsoScoreExactly)
{
    kernels::TraceSpec spec;
    spec.dbSequences = 4;
    const kernels::TraceInput input = kernels::makeTraceInput(spec);
    const kernels::TracedRun l4 = kernels::traceSwVmx<4>(input);
    const kernels::TracedRun l32 = kernels::traceSwVmx<32>(input);
    ASSERT_EQ(l4.scores.size(), input.db.size());
    ASSERT_EQ(l32.scores.size(), input.db.size());
    for (std::size_t i = 0; i < input.db.size(); ++i) {
        const int ref = align::smithWatermanScore(
            input.query, input.db[i], bio::blosum62(), {}).score;
        EXPECT_EQ(l4.scores[i], ref) << "lanes=4 seq " << i;
        EXPECT_EQ(l32.scores[i], ref) << "lanes=32 seq " << i;
    }
    // More lanes, fewer instructions — but sub-linearly.
    EXPECT_LT(l32.trace.size(), l4.trace.size());
    EXPECT_GT(l32.trace.size(), l4.trace.size() / 8);
}

} // namespace
