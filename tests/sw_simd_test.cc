/**
 * @file
 * Tests for the SIMD Smith-Waterman kernels: exact score equality
 * with the scalar reference at every lane count, profile layout,
 * strip-boundary correctness, and search-level equivalence with
 * SSEARCH.
 */

#include <gtest/gtest.h>

#include "align/smith_waterman.hh"
#include "align/ssearch.hh"
#include "align/sw_simd.hh"
#include "bio/random.hh"
#include "bio/scoring.hh"
#include "bio/synthetic.hh"

namespace
{

using namespace bioarch;
using bio::Sequence;

const bio::ScoringMatrix &kMat = bio::blosum62();
const bio::GapPenalties kGaps{};

TEST(VectorProfile, StripLayoutMatchesMatrix)
{
    const Sequence q("Q", "", "ACDEFGHIKLMN"); // 12 residues, 2 strips
    const align::VectorProfile<8> profile(q, kMat);
    EXPECT_EQ(profile.queryLength(), 12);
    EXPECT_EQ(profile.numStrips(), 2);
    const bio::Residue r = bio::Alphabet::encode('W');
    const std::int16_t *s0 = profile.strip(r, 0);
    const std::int16_t *s1 = profile.strip(r, 1);
    for (int l = 0; l < 8; ++l)
        EXPECT_EQ(s0[l], kMat.score(q[static_cast<std::size_t>(l)], r));
    for (int l = 0; l < 4; ++l)
        EXPECT_EQ(s1[l],
                  kMat.score(q[static_cast<std::size_t>(8 + l)], r));
    // Pad rows carry the sentinel.
    for (int l = 4; l < 8; ++l)
        EXPECT_EQ(s1[l], align::VectorProfile<8>::padScore);
}

TEST(SwSimd, MatchesScalarOnIdenticalSequences)
{
    const Sequence s("S", "", "ACDEFGHIKLMNPQRSTVWY");
    const align::VectorProfile<8> profile(s, kMat);
    const align::LocalScore simd =
        align::swSimdScan<8>(profile, s, kGaps);
    const align::LocalScore ref =
        align::smithWatermanScore(s, s, kMat, kGaps);
    EXPECT_EQ(simd.score, ref.score);
    EXPECT_EQ(simd.queryEnd, ref.queryEnd);
    EXPECT_EQ(simd.subjectEnd, ref.subjectEnd);
}

TEST(SwSimd, HandlesQueryShorterThanOneStrip)
{
    const Sequence q("Q", "", "WWC"); // 3 residues < 8 lanes
    const Sequence s("S", "", "AAWWCAA");
    const align::VectorProfile<8> profile(q, kMat);
    EXPECT_EQ(align::swSimdScan<8>(profile, q, kGaps).score,
              align::smithWatermanScore(q, q, kMat, kGaps).score);
    EXPECT_EQ(align::swSimdScan<8>(profile, s, kGaps).score,
              align::smithWatermanScore(q, s, kMat, kGaps).score);
}

TEST(SwSimd, HandlesSubjectShorterThanLanes)
{
    const Sequence q = bio::makeDefaultQuery(); // 222 residues
    const Sequence s("S", "", "WC");
    const align::VectorProfile<16> profile(q, kMat);
    EXPECT_EQ(align::swSimdScan<16>(profile, s, kGaps).score,
              align::smithWatermanScore(q, s, kMat, kGaps).score);
}

TEST(SwSimd, EmptyInputsScoreZero)
{
    const Sequence q("Q", "", "ACD");
    const Sequence e("E", "", "");
    const align::VectorProfile<8> profile(q, kMat);
    EXPECT_EQ(align::swSimdScan<8>(profile, e, kGaps).score, 0);
}

TEST(SwSimd, CountsCells)
{
    const Sequence q("Q", "", "ACDEFGHI"); // exactly one strip
    const Sequence s("S", "", "ACDEFGHIKL");
    const align::VectorProfile<8> profile(q, kMat);
    std::uint64_t cells = 0;
    align::swSimdScan<8>(profile, s, kGaps, &cells);
    EXPECT_EQ(cells, 80u); // n * N per strip
}

/**
 * The core cross-width property: vmx128, vmx256 and every other lane
 * count produce exactly the scalar SW score.
 */
template <int N>
void
checkLaneCount(std::uint64_t seed)
{
    bio::Rng rng(seed);
    for (int t = 0; t < 20; ++t) {
        const int lq = static_cast<int>(1 + rng.below(100));
        const Sequence q = bio::makeRandomSequence(rng, lq);
        const Sequence s = (t % 2 == 0)
            ? bio::makeRandomSequence(
                  rng, static_cast<int>(1 + rng.below(100)))
            : bio::mutate(rng, q, 0.5 + rng.uniform() * 0.4, "S", "");
        const align::VectorProfile<N> profile(q, kMat);
        const align::LocalScore got =
            align::swSimdScan<N>(profile, s, kGaps);
        const align::LocalScore ref =
            align::smithWatermanScore(q, s, kMat, kGaps);
        ASSERT_EQ(got.score, ref.score)
            << "N=" << N << " q=" << q.toString()
            << " s=" << s.toString();
    }
}

TEST(SwSimdProperty, Lanes4MatchesScalar) { checkLaneCount<4>(101); }
TEST(SwSimdProperty, Lanes8MatchesScalar) { checkLaneCount<8>(202); }
TEST(SwSimdProperty, Lanes16MatchesScalar) { checkLaneCount<16>(303); }
TEST(SwSimdProperty, Lanes32MatchesScalar) { checkLaneCount<32>(404); }

/** Both paper widths agree with each other cell-for-cell. */
TEST(SwSimdProperty, Vmx128EqualsVmx256)
{
    bio::Rng rng(999);
    for (int t = 0; t < 25; ++t) {
        const Sequence q = bio::makeRandomSequence(
            rng, static_cast<int>(10 + rng.below(150)));
        const Sequence s =
            bio::mutate(rng, q, 0.4 + rng.uniform() * 0.5, "S", "");
        const align::VectorProfile<8> p128(q, kMat);
        const align::VectorProfile<16> p256(q, kMat);
        EXPECT_EQ(align::swVmx128Scan(p128, s, kGaps).score,
                  align::swVmx256Scan(p256, s, kGaps).score);
    }
}

/** Gap-penalty sweep at both paper widths. */
class SwSimdGapSweep
    : public ::testing::TestWithParam<std::pair<int, int>>
{
};

TEST_P(SwSimdGapSweep, MatchesScalarAcrossPenalties)
{
    const bio::GapPenalties gaps{GetParam().first, GetParam().second};
    bio::Rng rng(5150);
    for (int t = 0; t < 15; ++t) {
        const Sequence q = bio::makeRandomSequence(
            rng, static_cast<int>(5 + rng.below(80)));
        const Sequence s = bio::mutate(rng, q, 0.6, "S", "");
        const align::VectorProfile<8> p8(q, kMat);
        const align::VectorProfile<16> p16(q, kMat);
        const int ref =
            align::smithWatermanScore(q, s, kMat, gaps).score;
        ASSERT_EQ((align::swSimdScan<8>(p8, s, gaps).score), ref);
        ASSERT_EQ((align::swSimdScan<16>(p16, s, gaps).score), ref);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Penalties, SwSimdGapSweep,
    ::testing::Values(std::pair{10, 1}, std::pair{4, 2},
                      std::pair{12, 3}, std::pair{20, 1}));

TEST(SwSimdSearch, AgreesWithSsearchOnDatabase)
{
    const Sequence query = bio::makeDefaultQuery();
    const bio::SequenceDatabase db = bio::makeDefaultDatabase(40);
    const align::SearchResults scalar =
        align::ssearchSearch(query, db, kMat, kGaps);
    const align::SearchResults v128 =
        align::swSimdSearch<8>(query, db, kMat, kGaps);
    const align::SearchResults v256 =
        align::swSimdSearch<16>(query, db, kMat, kGaps);

    ASSERT_EQ(v128.hits.size(), scalar.hits.size());
    ASSERT_EQ(v256.hits.size(), scalar.hits.size());
    for (std::size_t i = 0; i < scalar.hits.size(); ++i) {
        EXPECT_EQ(v128.hits[i].score, scalar.hits[i].score);
        EXPECT_EQ(v256.hits[i].score, scalar.hits[i].score);
        EXPECT_EQ(v128.hits[i].dbIndex, scalar.hits[i].dbIndex);
    }
}

} // namespace
