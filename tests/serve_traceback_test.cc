/**
 * @file
 * Tests for the two-phase serving tier (score -> align -> report):
 * ranked hits must be bit-identical with reporting on or off across
 * jobs/shards/replicas, every served CIGAR must replay to exactly
 * its reported score, alignments must round-trip through the
 * result cache, and the served blastn kind must find its planted
 * long-read homologs end to end.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "align/traceback/cigar.hh"
#include "bio/dna_workload.hh"
#include "bio/synthetic.hh"
#include "index/epoch.hh"
#include "serve/engine.hh"
#include "serve/router.hh"

namespace
{

using namespace bioarch;

const bio::SequenceDatabase &
testDb()
{
    static const bio::SequenceDatabase db =
        bio::makeDefaultDatabase(48);
    return db;
}

const std::vector<bio::Sequence> &
queryPool()
{
    static const std::vector<bio::Sequence> pool =
        bio::makeQuerySet();
    return pool;
}

/** Requests covering every served protein kind, reporting on. */
std::vector<serve::Request>
reportingStream(std::size_t count)
{
    const kernels::Workload kinds[] = {
        kernels::Workload::Ssearch34, kernels::Workload::SwVmx128,
        kernels::Workload::SwVmx256, kernels::Workload::Fasta34,
        kernels::Workload::Blast};
    std::vector<serve::Request> stream;
    for (std::size_t i = 0; i < count; ++i) {
        serve::Request r;
        r.id = i;
        r.kind = kinds[i % 5];
        r.query = queryPool()[i % queryPool().size()];
        r.reportAlignments = true;
        stream.push_back(std::move(r));
    }
    return stream;
}

void
expectSameHits(const std::vector<align::SearchHit> &got,
               const std::vector<align::SearchHit> &want,
               const std::string &context)
{
    ASSERT_EQ(got.size(), want.size()) << context;
    for (std::size_t i = 0; i < got.size(); ++i) {
        EXPECT_EQ(got[i].dbIndex, want[i].dbIndex)
            << context << " hit " << i;
        EXPECT_EQ(got[i].score, want[i].score)
            << context << " hit " << i;
        EXPECT_EQ(got[i].bitScore, want[i].bitScore)
            << context << " hit " << i;
        EXPECT_EQ(got[i].evalue, want[i].evalue)
            << context << " hit " << i;
    }
}

/**
 * The CIGAR-replay gate on a served response: one alignment slot
 * per ranked hit, spans inside both sequences, and cigarScore ==
 * the alignment's own reported score. For the Smith-Waterman kinds
 * and BLAST the alignment score must also equal the ranked hit
 * score (FASTA ranks by max(opt, initn), so its reported optimal
 * local alignment may legitimately out-score the ranking key).
 */
void
expectAlignmentsReplay(const serve::Response &resp,
                       const bio::Sequence &query,
                       const bio::SequenceDatabase &db,
                       const bio::GapPenalties &gaps)
{
    ASSERT_EQ(resp.alignments.size(), resp.hits.size());
    for (std::size_t h = 0; h < resp.hits.size(); ++h) {
        const align::CigarAlignment &aln = resp.alignments[h];
        const bio::Sequence &subject = db[resp.hits[h].dbIndex];
        if (aln.empty())
            continue; // a sub-threshold gapped stage reports empty
        ASSERT_GE(aln.qBegin, 0);
        ASSERT_LT(static_cast<std::size_t>(aln.qEnd),
                  query.length());
        ASSERT_GE(aln.sBegin, 0);
        ASSERT_LT(static_cast<std::size_t>(aln.sEnd),
                  subject.length());
        EXPECT_EQ(align::cigarScore(aln, query, subject,
                                    bio::blosum62(), gaps),
                  aln.score)
            << "hit " << h << " vs db seq "
            << resp.hits[h].dbIndex;
        if (resp.kind != kernels::Workload::Fasta34) {
            EXPECT_EQ(aln.score, resp.hits[h].score)
                << "hit " << h;
        }
    }
}

TEST(TwoPhase, RankedHitsBitIdenticalWithReportingOn)
{
    std::vector<serve::Request> score_only = reportingStream(10);
    for (serve::Request &r : score_only)
        r.reportAlignments = false;

    serve::EngineConfig ref_cfg;
    ref_cfg.jobs = 1;
    ref_cfg.shards = 1;
    serve::Engine ref(testDb(), ref_cfg);
    const std::vector<serve::Response> want =
        ref.serveBatch(score_only);

    const std::vector<serve::Request> reporting =
        reportingStream(10);
    for (const unsigned jobs : {1u, 2u, 8u}) {
        for (const std::size_t shards : {1u, 4u}) {
            serve::EngineConfig cfg;
            cfg.jobs = jobs;
            cfg.shards = shards;
            serve::Engine engine(testDb(), cfg);
            const std::vector<serve::Response> got =
                engine.serveBatch(reporting);
            ASSERT_EQ(got.size(), want.size());
            for (std::size_t i = 0; i < got.size(); ++i) {
                const std::string ctx = "jobs="
                    + std::to_string(jobs)
                    + " shards=" + std::to_string(shards)
                    + " req=" + std::to_string(i);
                expectSameHits(got[i].hits, want[i].hits, ctx);
                expectAlignmentsReplay(got[i],
                                       reporting[i].query,
                                       testDb(), cfg.gaps);
            }
            // Score-only responses carry no phase-2 payload.
            const std::vector<serve::Response> plain =
                engine.serveBatch(score_only);
            for (const serve::Response &r : plain) {
                EXPECT_TRUE(r.alignments.empty());
                EXPECT_EQ(r.tracebackCells, 0u);
            }
        }
    }
}

TEST(TwoPhase, TracebackAccountingFlowsToMetrics)
{
    serve::EngineConfig cfg;
    cfg.jobs = 2;
    serve::Engine engine(testDb(), cfg);
    const std::vector<serve::Response> got =
        engine.serveBatch(reportingStream(5));

    std::uint64_t cells = 0;
    std::uint64_t alignments = 0;
    for (const serve::Response &r : got) {
        EXPECT_FALSE(r.deadlineExpired());
        cells += r.tracebackCells;
        alignments += r.alignments.size();
    }
    EXPECT_GT(cells, 0u);
    EXPECT_EQ(engine.metrics().counterValue(
                  "traceback_cells_total"),
              cells);
    EXPECT_EQ(engine.metrics().counterValue(
                  "serve_alignments_total"),
              alignments);
    EXPECT_EQ(engine.metrics().counterValue(
                  "serve_tracebacks_skipped_total"),
              0u);
    EXPECT_GT(engine.metrics()
                  .histogram("serve_traceback_us")
                  .summary()
                  .count,
              0u);
}

TEST(TwoPhase, RouterReplicasMatchAndCacheRoundTripsAlignments)
{
    const std::vector<serve::Request> reporting =
        reportingStream(8);

    serve::EngineConfig ecfg;
    ecfg.jobs = 2;
    serve::Engine ref(testDb(), ecfg);
    const std::vector<serve::Response> want =
        ref.serveBatch(reporting);

    for (const std::size_t replicas : {1u, 2u}) {
        serve::RouterConfig rcfg;
        rcfg.replicas = replicas;
        rcfg.engine = ecfg;
        rcfg.cache.capacityBytes = 4u << 20;
        serve::ReplicaRouter router(
            index::makeEpoch(testDb(), false, 1), rcfg);

        const std::vector<serve::Response> first =
            router.serveBatch(reporting, {});
        ASSERT_EQ(first.size(), want.size());
        for (std::size_t i = 0; i < first.size(); ++i) {
            const std::string ctx = "replicas="
                + std::to_string(replicas)
                + " req=" + std::to_string(i);
            expectSameHits(first[i].hits, want[i].hits, ctx);
            EXPECT_EQ(first[i].alignments, want[i].alignments)
                << ctx;
        }

        // Same batch again: every answer must come from the cache
        // with the full phase-2 payload intact.
        const std::vector<serve::Response> second =
            router.serveBatch(reporting, {});
        for (std::size_t i = 0; i < second.size(); ++i) {
            EXPECT_TRUE(second[i].fromCache) << i;
            expectSameHits(second[i].hits, first[i].hits,
                           "cached " + std::to_string(i));
            EXPECT_EQ(second[i].alignments,
                      first[i].alignments)
                << i;
            EXPECT_EQ(second[i].tracebackCells,
                      first[i].tracebackCells)
                << i;
        }

        // A score-only request is a different cache identity: it
        // must miss the reporting entries and carry no alignments.
        std::vector<serve::Request> plain = reporting;
        for (serve::Request &r : plain)
            r.reportAlignments = false;
        const std::vector<serve::Response> third =
            router.serveBatch(plain, {});
        for (std::size_t i = 0; i < third.size(); ++i) {
            EXPECT_FALSE(third[i].fromCache) << i;
            EXPECT_TRUE(third[i].alignments.empty()) << i;
            expectSameHits(third[i].hits, first[i].hits,
                           "plain " + std::to_string(i));
        }
    }
}

TEST(TwoPhase, ReloadInvalidatesCachedAlignments)
{
    serve::RouterConfig rcfg;
    rcfg.engine.jobs = 2;
    rcfg.cache.capacityBytes = 4u << 20;
    serve::ReplicaRouter router(
        index::makeEpoch(testDb(), false, 1), rcfg);

    const std::vector<serve::Request> reporting =
        reportingStream(4);
    const std::vector<serve::Response> first =
        router.serveBatch(reporting, {});
    const std::vector<serve::Response> cached =
        router.serveBatch(reporting, {});
    for (const serve::Response &r : cached)
        EXPECT_TRUE(r.fromCache);

    router.reload(index::makeEpoch(
        bio::makeDefaultDatabase(48, 0xDBDBDBDC), false, 2));
    const std::vector<serve::Response> fresh =
        router.serveBatch(reporting, {});
    for (const serve::Response &r : fresh)
        EXPECT_FALSE(r.fromCache);
}

TEST(TwoPhase, DeadlineCoversTracebackPhase)
{
    serve::EngineConfig cfg;
    cfg.jobs = 1;
    serve::Engine engine(testDb(), cfg);
    std::vector<serve::Request> reporting = reportingStream(2);

    // An already-expired deadline: phase 1 skips every shard and
    // phase 2 skips every traceback, and both skips surface
    // through deadlineExpired().
    serve::ManualClock clock;
    clock.set(1e9);
    std::vector<double> deadlines(reporting.size(), 1.0);
    serve::BatchControl control;
    control.clock = &clock;
    control.deadlinesUs = deadlines.data();
    const std::vector<serve::Response> got =
        engine.serveBatch(reporting, control);
    for (const serve::Response &r : got) {
        EXPECT_TRUE(r.deadlineExpired());
        for (const align::CigarAlignment &aln : r.alignments)
            EXPECT_TRUE(aln.empty());
    }
}

TEST(BlastnServe, EndToEndFindsPlantedLongReadHomologs)
{
    bio::DnaWorkloadSpec spec;
    spec.numReads = 60;
    spec.minLength = 400;
    spec.maxLength = 1200;
    const std::vector<bio::Sequence> queries =
        bio::makeDnaQueryPool(4, 800, 0xD7AD8A5EULL);
    const bio::SequenceDatabase db =
        bio::makeDnaReadDatabase(spec, queries);

    serve::EngineConfig cfg;
    cfg.jobs = 2;
    cfg.shards = 4;
    serve::Engine engine(db, cfg);

    std::vector<serve::Request> requests;
    for (std::size_t i = 0; i < queries.size(); ++i) {
        serve::Request r;
        r.id = i;
        r.kind = kernels::Workload::Blastn;
        r.query = queries[i];
        r.reportAlignments = true;
        requests.push_back(std::move(r));
    }
    const std::vector<serve::Response> got =
        engine.serveBatch(requests);

    const bio::ScoringMatrix mm = bio::makeMatchMismatch(
        cfg.blastn.matchScore, cfg.blastn.mismatchScore);
    const bio::GapPenalties gaps{cfg.blastn.gapOpen,
                                 cfg.blastn.gapExtend};
    for (std::size_t i = 0; i < got.size(); ++i) {
        const serve::Response &r = got[i];
        // Every query has planted homologs: the scan must hit.
        ASSERT_FALSE(r.hits.empty()) << "query " << i;
        EXPECT_GE(r.hits.front().score, cfg.blastn.gapTrigger)
            << "query " << i;
        ASSERT_EQ(r.alignments.size(), r.hits.size());
        for (std::size_t h = 0; h < r.hits.size(); ++h) {
            const align::CigarAlignment &aln = r.alignments[h];
            if (aln.empty())
                continue;
            const bio::Sequence &subject = db[r.hits[h].dbIndex];
            EXPECT_EQ(aln.score, r.hits[h].score)
                << "query " << i << " hit " << h;
            EXPECT_EQ(align::cigarScore(aln, requests[i].query,
                                        subject, mm, gaps),
                      aln.score)
                << "query " << i << " hit " << h;
        }
    }

    // Determinism across jobs/shards holds for the blastn kind too.
    serve::EngineConfig ref_cfg = cfg;
    ref_cfg.jobs = 1;
    ref_cfg.shards = 1;
    serve::Engine ref(db, ref_cfg);
    const std::vector<serve::Response> want =
        ref.serveBatch(requests);
    for (std::size_t i = 0; i < got.size(); ++i) {
        expectSameHits(got[i].hits, want[i].hits,
                       "blastn req " + std::to_string(i));
        EXPECT_EQ(got[i].alignments, want[i].alignments) << i;
    }
}

TEST(BlastnServe, StreamSpecEmitsBlastnRequests)
{
    serve::StreamSpec spec;
    spec.requests = 6;
    spec.kinds = {kernels::Workload::Blastn};
    spec.reportAlignments = true;
    const std::vector<bio::Sequence> pool =
        bio::makeDnaQueryPool(3, 400, 7);
    const std::vector<serve::Request> reqs =
        serve::makeRequestStream(spec, pool);
    ASSERT_EQ(reqs.size(), 6u);
    for (const serve::Request &r : reqs) {
        EXPECT_EQ(r.kind, kernels::Workload::Blastn);
        EXPECT_TRUE(r.reportAlignments);
    }
}

} // namespace
