/**
 * @file
 * Tests for the FASTA heuristic pipeline: k-tuple index, diagonal
 * scan, region rescoring, initn chaining, opt stage, and whole-search
 * sensitivity/selectivity versus Smith-Waterman.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "align/fasta.hh"
#include "align/smith_waterman.hh"
#include "bio/random.hh"
#include "bio/scoring.hh"
#include "bio/synthetic.hh"

namespace
{

using namespace bioarch;
using bio::Sequence;

const bio::ScoringMatrix &kMat = bio::blosum62();
const bio::GapPenalties kGaps{};

TEST(KtupIndex, FindsAllWordOccurrences)
{
    const Sequence q("Q", "", "ACACA"); // words: AC CA AC CA
    const align::KtupIndex index(q, 2);
    EXPECT_EQ(index.ktup(), 2);

    const std::uint32_t ac = index.encode(q.residues().data());
    const auto [ac_begin, ac_end] = index.positions(ac);
    ASSERT_EQ(ac_end - ac_begin, 2);
    EXPECT_EQ(ac_begin[0], 0);
    EXPECT_EQ(ac_begin[1], 2);

    const std::uint32_t ca = index.encode(q.residues().data() + 1);
    const auto [ca_begin, ca_end] = index.positions(ca);
    ASSERT_EQ(ca_end - ca_begin, 2);
    EXPECT_EQ(ca_begin[0], 1);
    EXPECT_EQ(ca_begin[1], 3);
}

TEST(KtupIndex, AbsentWordsHaveEmptyRange)
{
    const Sequence q("Q", "", "AAAA");
    const align::KtupIndex index(q, 2);
    const bio::Residue w[2] = {bio::Alphabet::encode('W'),
                               bio::Alphabet::encode('W')};
    const auto [begin, end] = index.positions(index.encode(w));
    EXPECT_EQ(begin, end);
}

TEST(KtupIndex, ShortQueryYieldsNoWords)
{
    const Sequence q("Q", "", "A");
    const align::KtupIndex index(q, 2);
    EXPECT_EQ(index.queryLength(), 1);
    // No crash, and nothing indexed anywhere: spot-check one word.
    const bio::Residue w[2] = {0, 0};
    const auto [begin, end] = index.positions(index.encode(w));
    EXPECT_EQ(begin, end);
}

TEST(FastaScan, PerfectMatchScoresNearSelf)
{
    const Sequence q = bio::makeDefaultQuery();
    const align::KtupIndex index(q, 2);
    const align::FastaScores fs =
        align::fastaScan(index, q, q, kMat, kGaps, {});
    const int self = align::smithWatermanScore(q, q, kMat, kGaps).score;
    EXPECT_EQ(fs.opt, self); // band includes the main diagonal
    EXPECT_GT(fs.init1, 0);
    EXPECT_GE(fs.initn, fs.init1);
}

TEST(FastaScan, NoHitsOnDissimilarSequences)
{
    // Sequences over disjoint residue sets share no 2-mers.
    const Sequence q("Q", "", "ACACACACAC");
    const Sequence s("S", "", "WYWYWYWYWY");
    const align::KtupIndex index(q, 2);
    const align::FastaScores fs =
        align::fastaScan(index, q, s, kMat, kGaps, {});
    EXPECT_EQ(fs.init1, 0);
    EXPECT_EQ(fs.initn, 0);
    EXPECT_EQ(fs.opt, 0);
    EXPECT_TRUE(fs.regions.empty());
}

TEST(FastaScan, OptNeverExceedsSmithWaterman)
{
    bio::Rng rng(31337);
    const align::FastaParams params;
    for (int t = 0; t < 20; ++t) {
        const Sequence q = bio::makeRandomSequence(
            rng, static_cast<int>(30 + rng.below(100)));
        const Sequence s =
            bio::mutate(rng, q, 0.4 + rng.uniform() * 0.5, "S", "");
        const align::KtupIndex index(q, params.ktup);
        const align::FastaScores fs =
            align::fastaScan(index, q, s, kMat, kGaps, params);
        const int sw =
            align::smithWatermanScore(q, s, kMat, kGaps).score;
        EXPECT_LE(fs.opt, sw);
        EXPECT_LE(fs.init1, fs.initn);
    }
}

TEST(FastaScan, RegionsLieWithinSequences)
{
    bio::Rng rng(777);
    const Sequence q = bio::makeRandomSequence(rng, 120);
    const Sequence s = bio::mutate(rng, q, 0.8, "S", "");
    const align::KtupIndex index(q, 2);
    const align::FastaScores fs =
        align::fastaScan(index, q, s, kMat, kGaps, {});
    for (const align::FastaRegion &r : fs.regions) {
        EXPECT_GE(r.queryStart, 0);
        EXPECT_LE(r.queryEnd,
                  static_cast<int>(q.length()) - 1);
        EXPECT_LE(r.queryStart, r.queryEnd);
        EXPECT_GE(r.queryStart + r.diag, 0);
        EXPECT_LE(r.queryEnd + r.diag,
                  static_cast<int>(s.length()) - 1);
        EXPECT_GT(r.score, 0);
    }
}

TEST(FastaSearch, FindsPlantedHomologs)
{
    const Sequence query = bio::makeDefaultQuery();
    bio::DatabaseSpec spec;
    spec.numSequences = 80;
    const bio::SequenceDatabase db = bio::makeDatabase(spec, {query});
    const align::SearchResults res =
        align::fastaSearch(query, db, kMat, kGaps);

    ASSERT_FALSE(res.hits.empty());
    // The highest-identity homolog must rank first.
    const Sequence &top = db[res.hits.front().dbIndex];
    EXPECT_NE(top.description().find("homolog of P14942"),
              std::string::npos);
    // All 0.9-identity homologs must appear somewhere in the hits
    // (FASTA trades sensitivity for speed, but not at 90% identity).
    int planted_found = 0;
    for (const align::SearchHit &h : res.hits) {
        if (db[h.dbIndex].description().find("id=0.9")
            != std::string::npos)
            ++planted_found;
    }
    EXPECT_GE(planted_found, 1);
}

TEST(FastaSearch, DoesLessWorkThanSmithWaterman)
{
    const Sequence query = bio::makeDefaultQuery();
    const bio::SequenceDatabase db = bio::makeDefaultDatabase(40);
    const align::SearchResults fasta =
        align::fastaSearch(query, db, kMat, kGaps);
    // Full SW work = m * n cells.
    const std::uint64_t sw_cells =
        query.length() * db.totalResidues();
    EXPECT_LT(fasta.cellsComputed, sw_cells / 2)
        << "FASTA must prescreen away most DP work";
}

TEST(FastaSearch, HitsAreSortedAndBounded)
{
    const Sequence query = bio::makeDefaultQuery();
    const bio::SequenceDatabase db = bio::makeDefaultDatabase(60);
    const align::SearchResults res =
        align::fastaSearch(query, db, kMat, kGaps, {}, 10);
    EXPECT_LE(res.hits.size(), 10u);
    for (std::size_t i = 1; i < res.hits.size(); ++i)
        EXPECT_GE(res.hits[i - 1].score, res.hits[i].score);
}

} // namespace
