/**
 * @file
 * Sampled-simulation tests (src/sim/sample.{hh,cc}).
 *
 * Three contracts:
 *  - accuracy: sampled estimates stay inside the acceptance error
 *    bounds (IPC within 2%, DL1/L2 miss rates within 5%, trauma
 *    shares within 5 points) against golden full runs, for every
 *    workload x memory point of a reduced config grid;
 *  - determinism: the merged SampledStats is bit-for-bit identical
 *    across jobs {1, 2, 8} (fingerprint() and full equality);
 *  - checkpointing: MachineState snapshot/restore round-trips —
 *    a window simulated from a restored state reproduces the
 *    original run exactly, counter for counter.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "core/suite.hh"
#include "sim/sample.hh"

namespace
{

using namespace bioarch;

/** Same reduced working set as sim_golden_test: dbSequences=3
 * keeps 10 sampled-vs-full pairs fast while exercising every
 * kernel's hit and miss paths. */
core::WorkloadSuite &
sampleSuite()
{
    static core::WorkloadSuite s([] {
        kernels::TraceSpec spec;
        spec.dbSequences = 3;
        return spec;
    }());
    return s;
}

/** Fixed geometry for the plan/validate tests. */
sim::SampleConfig
testSample()
{
    sim::SampleConfig cfg;
    cfg.windowInsts = 10'000;
    cfg.periodInsts = 50'000;
    cfg.warmupInsts = 20'000;
    cfg.jobs = 1;
    return cfg;
}

/** Accuracy geometry scaled per trace (232k-3M instructions):
 * 10k-instruction windows, period chosen so every trace gets ~50
 * windows — small traces are measured nearly wall to wall (their
 * full runs are cheap anyway), long traces genuinely sample. */
sim::SampleConfig
accuracySample(const trace::Trace &tr)
{
    sim::SampleConfig cfg;
    cfg.windowInsts = 10'000;
    cfg.periodInsts =
        std::max<std::uint64_t>(cfg.windowInsts,
                                (tr.size() + 49) / 50);
    cfg.jobs = 1;
    return cfg;
}

sim::SimConfig
testMachine(const sim::MemoryConfig &memory)
{
    sim::SimConfig cfg;
    cfg.core = sim::core8Way();
    cfg.memory = memory;
    return cfg;
}

TEST(SamplePlan, EmptyTraceYieldsNoWindows)
{
    EXPECT_TRUE(sim::planWindows(0, testSample()).empty());
}

TEST(SamplePlan, ShortTraceYieldsOneClampedWindow)
{
    const auto windows = sim::planWindows(5'000, testSample());
    ASSERT_EQ(windows.size(), 1u);
    EXPECT_EQ(windows[0].warmupBegin, 0u);
    EXPECT_EQ(windows[0].begin, 0u);
    EXPECT_EQ(windows[0].count, 5'000u);
    EXPECT_EQ(windows[0].represents, 5'000u);
}

TEST(SamplePlan, RepresentsPartitionsTheTrace)
{
    const std::uint64_t insts = 1'234'567;
    const auto windows = sim::planWindows(insts, testSample());
    ASSERT_FALSE(windows.empty());
    std::uint64_t represented = 0;
    for (std::size_t i = 0; i < windows.size(); ++i) {
        const sim::SampleWindow &w = windows[i];
        EXPECT_LE(w.warmupBegin, w.begin);
        EXPECT_LE(w.begin - w.warmupBegin,
                  testSample().warmupInsts);
        EXPECT_GE(w.count, 1u);
        EXPECT_LE(w.count, testSample().windowInsts);
        EXPECT_LE(w.begin + w.count, insts);
        // The window sits inside its own period (its placement
        // within the period is a deterministic jitter, so strict
        // period-start spacing is NOT guaranteed — or wanted:
        // aligned placement resonates with loopy phase structure).
        const std::uint64_t period_begin = represented;
        EXPECT_GE(w.begin, period_begin);
        EXPECT_LE(w.begin + w.count, period_begin + w.represents);
        represented += w.represents;
    }
    EXPECT_EQ(represented, insts);

    // The same config plans the same windows every time.
    const auto again = sim::planWindows(insts, testSample());
    ASSERT_EQ(again.size(), windows.size());
    for (std::size_t i = 0; i < windows.size(); ++i) {
        EXPECT_EQ(again[i].begin, windows[i].begin);
        EXPECT_EQ(again[i].count, windows[i].count);
    }
}

TEST(SampleConfigValidate, RejectsNonsense)
{
    sim::SampleConfig cfg = testSample();
    EXPECT_TRUE(cfg.validate().empty());

    cfg.windowInsts = 0;
    EXPECT_FALSE(cfg.validate().empty());

    cfg = testSample();
    cfg.periodInsts = 0;
    EXPECT_FALSE(cfg.validate().empty());

    cfg = testSample();
    cfg.windowInsts = 1'000;
    cfg.periodInsts = 100;
    EXPECT_FALSE(cfg.validate().empty());

    cfg = testSample();
    cfg.chunkWindows = 0;
    EXPECT_FALSE(cfg.validate().empty());

    cfg = testSample();
    cfg.jobs = 0;
    EXPECT_FALSE(cfg.validate().empty());
}

TEST(SampleConfigValidate, SampleTraceThrowsOnRejectedConfig)
{
    sim::SampleConfig bad = testSample();
    bad.windowInsts = 0;
    const trace::Trace &tr =
        sampleSuite().trace(kernels::Workload::Blast);
    EXPECT_THROW(
        sim::sampleTrace(tr, testMachine(sim::memoryMe4()), bad),
        std::invalid_argument);
}

TEST(TraceWindows, SubspanViewsAreZeroCopyAndClamped)
{
    const trace::Trace &tr =
        sampleSuite().trace(kernels::Workload::Blast);
    ASSERT_GT(tr.size(), 100u);

    const trace::TraceView full = tr.view();
    EXPECT_EQ(full.size(), tr.size());
    EXPECT_EQ(full.baseIndex(), 0u);

    const trace::TraceView mid = tr.subspan(50, 25);
    EXPECT_EQ(mid.size(), 25u);
    EXPECT_EQ(mid.baseIndex(), 50u);
    // Zero-copy: the view aliases the trace's own storage.
    EXPECT_EQ(&mid[0], &tr[50]);

    // Clamping: a window reaching past the end truncates; a window
    // starting past the end is empty.
    EXPECT_EQ(tr.subspan(tr.size() - 10, 100).size(), 10u);
    EXPECT_TRUE(tr.subspan(tr.size() + 5, 1).empty());

    EXPECT_GE(tr.memoryBytes(), tr.size() * sizeof(isa::Inst));
}

/** run(trace) and runWindow(full view, cold state) are the same
 * computation — the window refactor must not fork the two paths. */
TEST(SampleWindows, FullRangeWindowEqualsFullRun)
{
    const trace::Trace &tr =
        sampleSuite().trace(kernels::Workload::Fasta34);
    const sim::SimConfig cfg = testMachine(sim::memoryMe1());

    const sim::SimStats full = core::simulate(tr, cfg);

    sim::MachineState cold(cfg);
    sim::Simulator sim(cfg);
    const sim::SimStats windowed = sim.runWindow(tr.view(), cold);

    EXPECT_EQ(full, windowed);
    EXPECT_EQ(full.fingerprint(), windowed.fingerprint());
}

/**
 * The accuracy pin: for every workload x {Me1, Me4} on the 8-way
 * core, the sampled estimate must sit within the acceptance
 * bounds of its own golden full run.
 */
TEST(SampleAccuracy, ErrorBoundsHoldAcrossWorkloadsAndMemories)
{
    const std::array<sim::MemoryConfig, 2> memories = {
        sim::memoryMe1(), sim::memoryMe4()};
    for (const kernels::Workload w : kernels::allWorkloads) {
        const trace::Trace &tr = sampleSuite().trace(w);
        for (const sim::MemoryConfig &mem : memories) {
            const sim::SimConfig cfg = testMachine(mem);
            const sim::SimStats full = core::simulate(tr, cfg);
            const sim::SampledStats sampled =
                sim::sampleTrace(tr, cfg, accuracySample(tr));
            const sim::SampleError err =
                sim::compareSampled(sampled, full);

            const std::string where =
                std::string(kernels::workloadName(w)) + " / "
                + mem.name;
            EXPECT_LE(err.ipcPct, 2.0) << where;
            EXPECT_LE(err.dl1MissRatePct, 5.0) << where;
            EXPECT_LE(err.l2MissRatePct, 5.0) << where;
            EXPECT_LE(err.traumaSharePts, 5.0) << where;

            // Miss rates come from the functional stream covering
            // the whole trace, so the access counts — a pure
            // function of the instruction mix — match the full
            // run's exactly.
            EXPECT_EQ(sampled.dl1Accesses, full.dl1Accesses)
                << where;

            // Sanity on the bookkeeping, not just the errors.
            EXPECT_EQ(sampled.traceInstructions, tr.size())
                << where;
            EXPECT_GT(sampled.windows, 1u) << where;
            EXPECT_LE(sampled.sampledFraction(), 1.0) << where;
            EXPECT_GT(sampled.estimatedCycles, 0.0) << where;
        }
        // The longest trace must genuinely sample, not replay.
        if (w == kernels::Workload::Ssearch34) {
            const trace::Trace &big = sampleSuite().trace(w);
            const sim::SampledStats s = sim::sampleTrace(
                big, testMachine(sim::memoryMe1()),
                accuracySample(big));
            EXPECT_LT(s.sampledFraction(), 0.25);
        }
    }
}

/** Merged stats must be bit-identical whatever the jobs count —
 * for both parallel shapes: full-prefix-warmup chunks (the last
 * chunk doubles as the functional coverage stream) and
 * bounded-warmup chunks (a dedicated coverage pass rides the
 * pool as one extra task). */
TEST(SampleDeterminism, MergeIsIdenticalAcrossJobCounts)
{
    const trace::Trace &tr =
        sampleSuite().trace(kernels::Workload::Ssearch34);
    const sim::SimConfig cfg = testMachine(sim::memoryMe1());

    for (const std::uint64_t warmup :
         {std::uint64_t{20'000},
          std::uint64_t{1} << 60 /* full prefix */}) {
        sim::SampleConfig sample = testSample();
        sample.warmupInsts = warmup;
        sample.chunkWindows = 8; // many chunks: real fan-out
        sample.jobs = 1;
        const sim::SampledStats one =
            sim::sampleTrace(tr, cfg, sample);
        sample.jobs = 2;
        const sim::SampledStats two =
            sim::sampleTrace(tr, cfg, sample);
        sample.jobs = 8;
        const sim::SampledStats eight =
            sim::sampleTrace(tr, cfg, sample);

        EXPECT_EQ(one, two);
        EXPECT_EQ(one, eight);
        EXPECT_EQ(one.fingerprint(), two.fingerprint());
        EXPECT_EQ(one.fingerprint(), eight.fingerprint());
    }
}

/**
 * Snapshot/restore round-trip: a window simulated from a restored
 * snapshot reproduces the original window bit for bit, and the
 * machine states it leaves behind digest-match.
 */
TEST(SampleCheckpoint, SnapshotRestoreRoundTripsBitForBit)
{
    const trace::Trace &tr =
        sampleSuite().trace(kernels::Workload::SwVmx128);
    const sim::SimConfig cfg = testMachine(sim::memoryMe1());
    ASSERT_GT(tr.size(), 60'000u);

    // Train a state, snapshot it at the measurement boundary.
    sim::MachineState state(cfg);
    state.warm(tr.subspan(0, 40'000));
    const sim::MachineState snap = state.snapshot();
    EXPECT_EQ(state.stateDigest(), snap.stateDigest());

    // Measure a window from the live state...
    sim::Simulator sim(cfg);
    const trace::TraceView window = tr.subspan(40'000, 10'000);
    const sim::SimStats first = sim.runWindow(window, state);
    // ...the run advanced the state past its snapshot...
    EXPECT_NE(state.stateDigest(), snap.stateDigest());

    // ...and restoring + re-running reproduces everything.
    state.restore(snap);
    EXPECT_EQ(state.stateDigest(), snap.stateDigest());
    const sim::SimStats second = sim.runWindow(window, state);
    EXPECT_EQ(first, second);
    EXPECT_EQ(first.fingerprint(), second.fingerprint());
}

/** Continuation: windows simulated back to back on one state are
 * the same whether or not a snapshot/restore sits between them. */
TEST(SampleCheckpoint, ContinuationIsUnaffectedBySnapshotCycle)
{
    const trace::Trace &tr =
        sampleSuite().trace(kernels::Workload::SwVmx256);
    const sim::SimConfig cfg = testMachine(sim::memoryMe4());
    ASSERT_GT(tr.size(), 30'000u);

    const trace::TraceView first = tr.subspan(0, 10'000);
    const trace::TraceView second = tr.subspan(10'000, 10'000);

    sim::Simulator sim(cfg);
    sim::MachineState direct(cfg);
    const sim::SimStats a1 = sim.runWindow(first, direct);
    const sim::SimStats a2 = sim.runWindow(second, direct);

    sim::MachineState cycled(cfg);
    const sim::SimStats b1 = sim.runWindow(first, cycled);
    sim::MachineState mid = cycled.snapshot();
    cycled.restore(mid);
    const sim::SimStats b2 = sim.runWindow(second, cycled);

    EXPECT_EQ(a1, b1);
    EXPECT_EQ(a2, b2);
    EXPECT_EQ(direct.stateDigest(), cycled.stateDigest());
}

/** The digest must see every component of the machine state. */
TEST(SampleCheckpoint, StateDigestSeesEveryComponent)
{
    const sim::SimConfig cfg = testMachine(sim::memoryMe1());
    const trace::Trace &tr =
        sampleSuite().trace(kernels::Workload::Blast);

    sim::MachineState cold(cfg);
    sim::MachineState warmed(cfg);
    EXPECT_EQ(cold.stateDigest(), warmed.stateDigest());
    warmed.warm(tr.subspan(0, 5'000));
    EXPECT_NE(cold.stateDigest(), warmed.stateDigest());

    // A different predictor kind changes the digest even cold.
    sim::SimConfig other = cfg;
    other.bpred.kind = sim::PredictorKind::Bimodal;
    sim::MachineState bimodal(other);
    EXPECT_NE(cold.stateDigest(), bimodal.stateDigest());
}

} // namespace
