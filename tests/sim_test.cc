/**
 * @file
 * Micro-validation of the simulator components: cache behavior on
 * hand-computed access sequences, branch predictor learning on
 * crafted outcome patterns, and pipeline throughput limits on
 * synthetic traces (independent ops ~ issue width; serial chains ~
 * 1/latency; memory misses and mispredictions throttle as expected).
 */

#include <gtest/gtest.h>

#include "sim/bpred.hh"
#include "sim/cache.hh"
#include "sim/config.hh"
#include "sim/pipeline.hh"
#include "trace/tracer.hh"

namespace
{

using namespace bioarch;
using sim::CacheConfig;
using sim::SimConfig;
using trace::Reg;
using trace::Tracer;

// ---------------- cache ------------------------------------------

TEST(Cache, DirectMappedConflictMisses)
{
    // 2 lines of 64 B, direct-mapped: addresses 0 and 128 collide.
    sim::Cache c(CacheConfig{128, 1, 64, 1});
    EXPECT_FALSE(c.access(0));    // compulsory
    EXPECT_TRUE(c.access(32));    // same line
    EXPECT_FALSE(c.access(128));  // conflicts with line 0
    EXPECT_FALSE(c.access(0));    // evicted by 128
    EXPECT_FALSE(c.access(64));   // set 1, first touch
    EXPECT_TRUE(c.access(64));    // now resident
    EXPECT_EQ(c.accesses(), 6u);
    EXPECT_EQ(c.misses(), 4u);
}

TEST(Cache, TwoWayAssociativityAvoidsConflict)
{
    // Same capacity, 2-way: 0 and 128 coexist.
    sim::Cache c(CacheConfig{128, 2, 64, 1});
    c.access(0);
    c.access(128);
    EXPECT_TRUE(c.access(0));
    EXPECT_TRUE(c.access(128));
}

TEST(Cache, LruEvictsOldest)
{
    // One set, 2 ways, 64 B lines over a 128 B cache.
    sim::Cache c(CacheConfig{128, 2, 64, 1});
    c.access(0);    // A
    c.access(128);  // B
    c.access(0);    // touch A -> B is LRU
    c.access(256);  // C evicts B
    EXPECT_TRUE(c.access(0));
    EXPECT_FALSE(c.access(128));
}

TEST(Cache, InfiniteCacheNeverMisses)
{
    sim::Cache c(CacheConfig{-1, 1, 128, 1});
    for (std::uint64_t a = 0; a < 100; ++a)
        EXPECT_TRUE(c.access(a * 4096));
    EXPECT_EQ(c.misses(), 0u);
}

TEST(Cache, MissRateOverWorkingSetLargerThanCache)
{
    // 4 KB cache, 8 KB working set, repeated sweep: after warmup
    // every access misses (LRU with a cyclic sweep = worst case).
    sim::Cache c(CacheConfig{4096, 2, 128, 1});
    for (int pass = 0; pass < 4; ++pass)
        for (std::uint64_t a = 0; a < 8192; a += 128)
            c.access(a);
    EXPECT_GT(c.missRate(), 0.9);
}

TEST(Cache, ProbeDoesNotFill)
{
    sim::Cache c(CacheConfig{4096, 2, 128, 1});
    EXPECT_FALSE(c.probe(0));
    EXPECT_FALSE(c.probe(0));
    c.access(0);
    EXPECT_TRUE(c.probe(0));
}

TEST(Hierarchy, LatenciesStackThroughLevels)
{
    sim::MemoryConfig mem = sim::memoryMe1();
    const int walk = mem.dataTranslation.tlb2Latency
        + mem.dataTranslation.walkLatency;
    sim::DataHierarchy h(mem);
    // First touch misses both TLBs (page walk) and both caches.
    const sim::MemAccess first = h.access(0, false);
    EXPECT_EQ(first.level, sim::MemLevel::Memory);
    EXPECT_EQ(first.tlbLevel, sim::TlbLevel::Walk);
    EXPECT_EQ(first.latency, 1 + 12 + 300 + walk);
    // Second touch: everything hits.
    const sim::MemAccess second = h.access(0, false);
    EXPECT_EQ(second.level, sim::MemLevel::L1);
    EXPECT_EQ(second.tlbLevel, sim::TlbLevel::Tlb1);
    EXPECT_EQ(second.latency, 1);
    // Same page, different line: TLB hits, caches miss.
    const sim::MemAccess l2 = h.access(256, false);
    EXPECT_EQ(l2.level, sim::MemLevel::Memory);
    EXPECT_EQ(l2.tlbLevel, sim::TlbLevel::Tlb1);
    EXPECT_EQ(l2.latency, 1 + 12 + 300);
}

TEST(Tlb, CapacityAndLevels)
{
    sim::TranslationConfig cfg;
    cfg.tlb1 = sim::TlbConfig{4, 4};
    cfg.tlb2 = sim::TlbConfig{16, 4};
    sim::TranslationUnit tu(cfg);

    // Warm 4 pages: all fit TLB1.
    for (int pass = 0; pass < 2; ++pass)
        for (std::uint64_t p = 0; p < 4; ++p)
            tu.translate(p * 4096);
    EXPECT_EQ(tu.translate(0).level, sim::TlbLevel::Tlb1);

    // 16 pages fit TLB2 but thrash TLB1.
    for (int pass = 0; pass < 2; ++pass)
        for (std::uint64_t p = 0; p < 16; ++p)
            tu.translate(p * 4096);
    const sim::Translation t2 = tu.translate(0);
    EXPECT_EQ(t2.level, sim::TlbLevel::Tlb2);
    EXPECT_EQ(t2.latency, cfg.tlb2Latency);

    // A brand-new page walks.
    const sim::Translation walk = tu.translate(999 * 4096);
    EXPECT_EQ(walk.level, sim::TlbLevel::Walk);
    EXPECT_EQ(walk.latency, cfg.tlb2Latency + cfg.walkLatency);
}

TEST(Tlb, InfiniteTlbNeverMisses)
{
    sim::TranslationConfig cfg;
    cfg.tlb1 = sim::TlbConfig{-1, 1};
    sim::TranslationUnit tu(cfg);
    for (std::uint64_t p = 0; p < 1000; ++p)
        EXPECT_EQ(tu.translate(p * 4096).level,
                  sim::TlbLevel::Tlb1);
}

TEST(Tlb, TinyDataTlbCreatesTlbTraumas)
{
    // Stride over many pages with a 2-entry TLB: the pipeline must
    // charge mm_tlb traumas.
    Tracer t("tlb");
    const isa::Addr buf = t.alloc(8u << 20, "pages");
    Reg r = t.alu();
    for (int i = 0; i < 2000; ++i) {
        r = t.load(buf + static_cast<isa::Addr>(i % 512) * 8192,
                   4, {r});
        r = t.alu({r});
    }
    const trace::Trace tr = t.take();
    SimConfig cfg;
    cfg.memory = sim::memoryInf();
    cfg.memory.dataTranslation.tlb1 = sim::TlbConfig{2, 2};
    cfg.memory.dataTranslation.tlb2 = sim::TlbConfig{8, 4};
    const sim::SimStats stats = sim::Simulator(cfg).run(tr);
    EXPECT_GT(stats.traumas.get(sim::Trauma::MmTlb2), 0u);
    EXPECT_GT(stats.dtlb1Misses, 1000u);
}

// ---------------- branch predictors ------------------------------

TEST(Bpred, BimodalLearnsConstantDirection)
{
    sim::BimodalPredictor p(1024);
    for (int i = 0; i < 100; ++i)
        p.predictAndUpdate(0x40, true);
    // After warmup the counter saturates: near-perfect accuracy.
    EXPECT_GT(p.accuracy(), 0.95);
}

TEST(Bpred, BimodalStrugglesWithAlternation)
{
    sim::BimodalPredictor p(1024);
    for (int i = 0; i < 1000; ++i)
        p.predictAndUpdate(0x40, i % 2 == 0);
    EXPECT_LT(p.accuracy(), 0.7);
}

TEST(Bpred, GshareLearnsAlternation)
{
    sim::GsharePredictor p(1024);
    for (int i = 0; i < 1000; ++i)
        p.predictAndUpdate(0x40, i % 2 == 0);
    // History disambiguates the alternating pattern.
    EXPECT_GT(p.accuracy(), 0.9);
}

TEST(Bpred, CombinedTracksBetterComponent)
{
    sim::CombinedPredictor p(1024);
    // Pattern gshare handles but bimodal cannot.
    for (int i = 0; i < 2000; ++i)
        p.predictAndUpdate(0x40, (i % 4) < 2);
    EXPECT_GT(p.accuracy(), 0.85);
}

TEST(Bpred, PerfectPredictorNeverMisses)
{
    sim::PerfectPredictor p;
    for (int i = 0; i < 100; ++i) {
        const bool outcome = (i * 7 % 3) == 0;
        p.setOutcome(outcome);
        p.predictAndUpdate(0x40 + i, outcome);
    }
    EXPECT_EQ(p.mispredictions(), 0u);
    EXPECT_DOUBLE_EQ(p.accuracy(), 1.0);
}

TEST(Bpred, FactoryBuildsConfiguredKind)
{
    sim::BranchPredictorConfig cfg;
    cfg.kind = sim::PredictorKind::Perfect;
    auto p = sim::makePredictor(cfg);
    EXPECT_NE(dynamic_cast<sim::PerfectPredictor *>(p.get()),
              nullptr);
}

TEST(Btb, CapacityMissesOnWideFootprint)
{
    sim::Btb btb(16, 4);
    // 16 branches fit; the first pass misses, later passes hit.
    for (int pass = 0; pass < 3; ++pass)
        for (std::uint64_t pc = 0; pc < 16; ++pc)
            btb.lookup(pc);
    EXPECT_EQ(btb.misses(), 16u);
    // 64 branches thrash a 16-entry BTB.
    sim::Btb small(16, 4);
    for (int pass = 0; pass < 3; ++pass)
        for (std::uint64_t pc = 0; pc < 64; ++pc)
            small.lookup(pc);
    EXPECT_GT(small.misses(), 100u);
}

// ---------------- pipeline ---------------------------------------

/** Independent single-cycle ALU ops reach the FX-unit limit. */
TEST(Pipeline, IndependentAluOpsReachUnitLimit)
{
    Tracer t("ind");
    for (int i = 0; i < 20000; ++i)
        t.alu();
    const trace::Trace tr = t.take();

    SimConfig cfg; // 4-way: 3 FX units, fetch/rename/dispatch 4
    cfg.memory = sim::memoryInf();
    sim::Simulator s(cfg);
    const sim::SimStats stats = s.run(tr);
    EXPECT_EQ(stats.instructions, 20000u);
    EXPECT_GT(stats.ipc(), 2.5);
    EXPECT_LE(stats.ipc(), 3.05); // 3 FX units bound it
}

/** A serial dependency chain runs at 1/latency. */
TEST(Pipeline, SerialChainRunsAtOnePerCycle)
{
    Tracer t("chain");
    Reg r = t.alu();
    for (int i = 0; i < 10000; ++i)
        r = t.alu({r});
    const trace::Trace tr = t.take();

    SimConfig cfg;
    cfg.memory = sim::memoryInf();
    sim::Simulator s(cfg);
    const sim::SimStats stats = s.run(tr);
    EXPECT_NEAR(stats.ipc(), 1.0, 0.05);
    // Every stalled cycle is a FX register dependency.
    EXPECT_GT(stats.traumas.get(sim::Trauma::RgFix), 0u);
}

/** A serial chain of 2-cycle vector ops runs at 1/2 IPC with
 * RG_VI the dominant trauma. */
TEST(Pipeline, VectorChainExposesViDependencies)
{
    Tracer t("vchain");
    Reg r = t.vsimple();
    for (int i = 0; i < 10000; ++i)
        r = t.vsimple({r});
    const trace::Trace tr = t.take();

    SimConfig cfg;
    cfg.memory = sim::memoryInf();
    sim::Simulator s(cfg);
    const sim::SimStats stats = s.run(tr);
    EXPECT_NEAR(stats.ipc(), 0.5, 0.05);
    EXPECT_EQ(stats.traumas.dominant(), sim::Trauma::RgVi);
}

/** Loads that miss to memory throttle a dependent chain. */
TEST(Pipeline, MemoryMissesThrottleChain)
{
    Tracer t("mem");
    const isa::Addr buf = t.alloc(16u << 20, "big");
    Reg r = t.alu();
    for (int i = 0; i < 2000; ++i) {
        // Stride past the line size so every load misses DL1.
        r = t.load(buf + static_cast<isa::Addr>(i) * 256, 4, {r});
        r = t.alu({r});
    }
    const trace::Trace tr = t.take();

    SimConfig fast;
    fast.memory = sim::memoryInf();
    SimConfig slow;
    slow.memory = sim::memoryMe1(); // 32K/1M: 16 MB sweep misses L2
    const sim::SimStats f = sim::Simulator(fast).run(tr);
    const sim::SimStats s = sim::Simulator(slow).run(tr);
    EXPECT_GT(f.ipc(), 5 * s.ipc());
    EXPECT_GT(s.dl1MissRate(), 0.45);
    // The L2-miss service time dominates the run; the dependent
    // ALU/load waits behind each miss surface as rg_mem/rg_fix.
    EXPECT_GT(s.traumas.get(sim::Trauma::MmDl2), s.cycles / 3);
    EXPECT_GT(s.traumas.get(sim::Trauma::RgMem), 0u);
    EXPECT_EQ(f.dl1Misses, 0u);
}

/** Mispredicted branches flush-throttle the front end. */
TEST(Pipeline, MispredictionsCostCycles)
{
    // Data-dependent alternating-ish pattern the bimodal cannot
    // learn; compare against a perfect predictor.
    auto make = [] {
        Tracer t("br");
        Reg r = t.alu();
        for (int i = 0; i < 8000; ++i) {
            r = t.alu({r});
            t.branch((i * 2654435761u >> 13) & 1, {r});
        }
        return t.take();
    };
    const trace::Trace tr = make();

    SimConfig real;
    real.memory = sim::memoryInf();
    real.bpred.kind = sim::PredictorKind::Bimodal;
    SimConfig perfect;
    perfect.memory = sim::memoryInf();
    perfect.bpred.kind = sim::PredictorKind::Perfect;

    const sim::SimStats r1 = sim::Simulator(real).run(tr);
    const sim::SimStats r2 = sim::Simulator(perfect).run(tr);
    EXPECT_LT(r1.predictionAccuracy(), 0.8);
    EXPECT_DOUBLE_EQ(r2.predictionAccuracy(), 1.0);
    EXPECT_GT(r2.ipc(), 1.5 * r1.ipc());
    EXPECT_GT(r1.traumas.get(sim::Trauma::IfPred), 0u);
}

/** Wider cores speed up parallel work. */
TEST(Pipeline, WiderCoreRaisesIpcOnParallelWork)
{
    Tracer t("wide");
    for (int i = 0; i < 30000; ++i) {
        t.alu();
        t.vsimple();
        t.vperm();
    }
    const trace::Trace tr = t.take();

    SimConfig w4;
    w4.memory = sim::memoryInf();
    SimConfig w8 = w4;
    w8.core = sim::core8Way();
    SimConfig w16 = w4;
    w16.core = sim::core16Way();

    const double ipc4 = sim::Simulator(w4).run(tr).ipc();
    const double ipc8 = sim::Simulator(w8).run(tr).ipc();
    const double ipc16 = sim::Simulator(w16).run(tr).ipc();
    EXPECT_GT(ipc8, ipc4 * 1.2);
    EXPECT_GE(ipc16, ipc8);
}

/** The retire stream preserves the program (all insts retire). */
TEST(Pipeline, AllInstructionsRetireExactlyOnce)
{
    Tracer t("all");
    const isa::Addr buf = t.alloc(4096, "buf");
    Reg r = t.alu();
    for (int i = 0; i < 500; ++i) {
        r = t.load(buf + (i % 32) * 64u, 4, {r});
        t.store(buf + (i % 32) * 64u, 4, r);
        t.branch(i % 3 == 0, {r});
        t.vperm({});
    }
    const trace::Trace tr = t.take();
    SimConfig cfg;
    const sim::SimStats stats = sim::Simulator(cfg).run(tr);
    EXPECT_EQ(stats.instructions, tr.size());
    EXPECT_GT(stats.cycles, 0u);
}

/** Empty traces are handled gracefully. */
TEST(Pipeline, EmptyTraceYieldsZeroStats)
{
    const trace::Trace tr("empty");
    SimConfig cfg;
    const sim::SimStats stats = sim::Simulator(cfg).run(tr);
    EXPECT_EQ(stats.cycles, 0u);
    EXPECT_EQ(stats.instructions, 0u);
    EXPECT_EQ(stats.ipc(), 0.0);
}

/** Occupancy histograms account for every cycle. */
TEST(Pipeline, OccupancyHistogramsCoverAllCycles)
{
    Tracer t("occ");
    for (int i = 0; i < 5000; ++i)
        t.vsimple();
    const trace::Trace tr = t.take();
    SimConfig cfg;
    const sim::SimStats stats = sim::Simulator(cfg).run(tr);

    std::uint64_t vi_cycles = 0;
    for (std::uint64_t c : stats.queueOccupancy[static_cast<int>(
             sim::FuClass::Vi)])
        vi_cycles += c;
    EXPECT_EQ(vi_cycles, stats.cycles);
    std::uint64_t inflight_cycles = 0;
    for (std::uint64_t c : stats.inflightOccupancy)
        inflight_cycles += c;
    EXPECT_EQ(inflight_cycles, stats.cycles);
    // With 1 VI unit and plenty of supply, the VI queue backs up.
    EXPECT_GT(sim::SimStats::meanOccupancy(
                  stats.queueOccupancy[static_cast<int>(
                      sim::FuClass::Vi)]),
              2.0);
}

TEST(Config, PresetsMatchTableIV)
{
    const sim::CoreConfig c4 = sim::core4Way();
    const sim::CoreConfig c8 = sim::core8Way();
    const sim::CoreConfig c16 = sim::core16Way();
    EXPECT_EQ(c4.fetchWidth, 4);
    EXPECT_EQ(c4.retireWidth, 6);
    EXPECT_EQ(c4.inflightLimit, 160);
    EXPECT_EQ(c4.fuUnits(sim::FuClass::Fix), 3);
    EXPECT_EQ(c4.fuUnits(sim::FuClass::Vi), 1);
    EXPECT_EQ(c8.fetchWidth, 8);
    EXPECT_EQ(c8.queueSize(sim::FuClass::Fix), 40);
    EXPECT_EQ(c16.fetchWidth, 16);
    EXPECT_EQ(c16.fuUnits(sim::FuClass::Br), 7);
}

TEST(Config, MemoryPresetsMatchTableV)
{
    EXPECT_EQ(sim::memoryMe1().dl1.sizeBytes, 32 * 1024);
    EXPECT_EQ(sim::memoryMe2().dl1.sizeBytes, 64 * 1024);
    EXPECT_EQ(sim::memoryMe3().l2.sizeBytes, 4 * 1024 * 1024);
    EXPECT_TRUE(sim::memoryMe4().l2.infinite());
    EXPECT_TRUE(sim::memoryInf().dl1.infinite());
    EXPECT_EQ(sim::memoryMe1().memLatency, 300);
    EXPECT_EQ(sim::memoryMe1().l2.latency, 12);
}

} // namespace
