/**
 * @file
 * Unit tests for the bio substrate: alphabet, scoring, sequences,
 * FASTA I/O, RNG determinism, and the synthetic workload generator.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "bio/alphabet.hh"
#include "bio/database.hh"
#include "bio/fasta_io.hh"
#include "bio/random.hh"
#include "bio/scoring.hh"
#include "bio/sequence.hh"
#include "bio/synthetic.hh"

namespace
{

using namespace bioarch::bio;

TEST(Alphabet, RoundTripsAllLetters)
{
    for (char c : Alphabet::letters) {
        const Residue r = Alphabet::encode(c);
        EXPECT_LT(r, Alphabet::numSymbols);
        EXPECT_EQ(Alphabet::decode(r), c);
    }
}

TEST(Alphabet, LowerCaseEncodesLikeUpperCase)
{
    EXPECT_EQ(Alphabet::encode('a'), Alphabet::encode('A'));
    EXPECT_EQ(Alphabet::encode('w'), Alphabet::encode('W'));
}

TEST(Alphabet, InvalidLettersEncodeAsUnknown)
{
    EXPECT_EQ(Alphabet::encode('*'), Alphabet::unknown);
    EXPECT_EQ(Alphabet::encode('1'), Alphabet::unknown);
    EXPECT_EQ(Alphabet::encode(' '), Alphabet::unknown);
    EXPECT_FALSE(Alphabet::isValidLetter('*'));
    EXPECT_TRUE(Alphabet::isValidLetter('A'));
}

TEST(Alphabet, BackgroundFrequenciesSumToOne)
{
    double sum = 0.0;
    for (double f : Alphabet::backgroundFrequencies()) {
        EXPECT_GT(f, 0.0);
        sum += f;
    }
    EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(Scoring, Blosum62KnownValues)
{
    const ScoringMatrix &m = blosum62();
    const auto enc = [](char c) { return Alphabet::encode(c); };
    // Spot values from the published BLOSUM62 table.
    EXPECT_EQ(m.score(enc('W'), enc('W')), 11);
    EXPECT_EQ(m.score(enc('A'), enc('A')), 4);
    EXPECT_EQ(m.score(enc('R'), enc('K')), 2);
    EXPECT_EQ(m.score(enc('C'), enc('C')), 9);
    EXPECT_EQ(m.score(enc('W'), enc('C')), -2);
    EXPECT_EQ(m.score(enc('G'), enc('E')), -2);
    EXPECT_EQ(m.maxScore(), 11);
    EXPECT_EQ(m.minScore(), -4);
}

TEST(Scoring, Blosum62IsSymmetric)
{
    const ScoringMatrix &m = blosum62();
    for (int a = 0; a < Alphabet::numSymbols; ++a)
        for (int b = 0; b < Alphabet::numSymbols; ++b)
            EXPECT_EQ(m.score(static_cast<Residue>(a),
                              static_cast<Residue>(b)),
                      m.score(static_cast<Residue>(b),
                              static_cast<Residue>(a)));
}

TEST(Scoring, GapPenaltyCost)
{
    const GapPenalties gaps; // open 10, extend 1
    EXPECT_EQ(gaps.cost(0), 0);
    EXPECT_EQ(gaps.cost(1), 11);
    EXPECT_EQ(gaps.cost(3), 13);
    EXPECT_EQ(gaps.openCost(), 11);
    EXPECT_EQ(gaps.extendCost(), 1);
}

TEST(Scoring, MatchMismatchMatrix)
{
    const ScoringMatrix m = makeMatchMismatch(5, -4);
    EXPECT_EQ(m.score(0, 0), 5);
    EXPECT_EQ(m.score(0, 1), -4);
}

TEST(Sequence, BuildFromLetters)
{
    const Sequence s("ID1", "test protein", "ACDEF");
    EXPECT_EQ(s.id(), "ID1");
    EXPECT_EQ(s.length(), 5u);
    EXPECT_EQ(s.toString(), "ACDEF");
    EXPECT_FALSE(s.empty());
}

TEST(Sequence, InvalidLettersBecomeX)
{
    const Sequence s("ID", "", "AC*DE");
    EXPECT_EQ(s.toString(), "ACXDE");
}

TEST(Database, TracksAggregateStatistics)
{
    SequenceDatabase db;
    EXPECT_TRUE(db.empty());
    db.add(Sequence("A", "", "ACDEF"));
    db.add(Sequence("B", "", "ACD"));
    EXPECT_EQ(db.size(), 2u);
    EXPECT_EQ(db.totalResidues(), 8u);
    EXPECT_EQ(db.maxLength(), 5u);
    EXPECT_EQ(db[1].id(), "B");
}

TEST(FastaIo, ParsesMultiSequenceInput)
{
    const std::string text = ">P1 first protein\n"
                             "ACDEF\nGHIKL\n"
                             "\n"
                             ">P2\n"
                             "MNPQ\n";
    const SequenceDatabase db = readFastaString(text);
    ASSERT_EQ(db.size(), 2u);
    EXPECT_EQ(db[0].id(), "P1");
    EXPECT_EQ(db[0].description(), "first protein");
    EXPECT_EQ(db[0].toString(), "ACDEFGHIKL");
    EXPECT_EQ(db[1].id(), "P2");
    EXPECT_EQ(db[1].toString(), "MNPQ");
}

TEST(FastaIo, RejectsResiduesBeforeHeader)
{
    EXPECT_THROW(readFastaString("ACDEF\n"), FastaError);
}

TEST(FastaIo, RoundTripsThroughStream)
{
    SequenceDatabase db;
    db.add(Sequence("Q1", "alpha", std::string(150, 'A') + "CDEF"));
    db.add(Sequence("Q2", "", "WYV"));
    std::ostringstream out;
    writeFasta(out, db);
    const SequenceDatabase back = readFastaString(out.str());
    ASSERT_EQ(back.size(), 2u);
    EXPECT_EQ(back[0].toString(), db[0].toString());
    EXPECT_EQ(back[1].toString(), db[1].toString());
    EXPECT_EQ(back[0].id(), "Q1");
    EXPECT_EQ(back[0].description(), "alpha");
}

TEST(Random, DeterministicAcrossInstances)
{
    Rng a(42);
    Rng b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Random, DifferentSeedsDiverge)
{
    Rng a(1);
    Rng b(2);
    int equal = 0;
    for (int i = 0; i < 64; ++i)
        equal += a.next() == b.next();
    EXPECT_LT(equal, 4);
}

TEST(Random, BelowStaysInRange)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(rng.below(13), 13u);
}

TEST(Random, UniformIsInUnitInterval)
{
    Rng rng(9);
    double sum = 0.0;
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Synthetic, TableIIQueriesMatchPaper)
{
    // Table II lists 10 families; the paper text says 11 queries, so
    // the generator adds a synthetic eleventh (see synthetic.cc).
    const auto &specs = tableIIQueries();
    ASSERT_EQ(specs.size(), 11u);
    EXPECT_STREQ(specs.front().accession, "P02232");
    EXPECT_EQ(specs.front().length, 143);
    EXPECT_STREQ(specs[9].accession, "P03435");
    EXPECT_EQ(specs[9].length, 567);
}

TEST(Synthetic, QuerySetHasSpecifiedLengths)
{
    const auto queries = makeQuerySet();
    const auto &specs = tableIIQueries();
    ASSERT_EQ(queries.size(), specs.size());
    for (std::size_t i = 0; i < queries.size(); ++i) {
        EXPECT_EQ(queries[i].id(), specs[i].accession);
        EXPECT_EQ(static_cast<int>(queries[i].length()),
                  specs[i].length);
    }
}

TEST(Synthetic, DefaultQueryIsGlutathioneSTransferase)
{
    const Sequence q = makeDefaultQuery();
    EXPECT_EQ(q.id(), "P14942");
    EXPECT_EQ(q.length(), 222u);
}

TEST(Synthetic, GenerationIsDeterministic)
{
    const auto a = makeQuerySet(123);
    const auto b = makeQuerySet(123);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i)
        EXPECT_EQ(a[i].residues(), b[i].residues());
}

TEST(Synthetic, DatabaseContainsPlantedHomologs)
{
    DatabaseSpec spec;
    spec.numSequences = 100;
    const auto queries = makeQuerySet();
    const SequenceDatabase db = makeDatabase(spec, queries);
    EXPECT_EQ(db.size(), 100u);

    int homologs = 0;
    for (const Sequence &s : db)
        if (s.description().find("homolog of") != std::string::npos)
            ++homologs;
    // homologsPerQuery (3) x identity levels (3) x queries, capped
    // by database size; at 100 sequences some must be present.
    EXPECT_GT(homologs, 0);
}

TEST(Synthetic, MutateHitsIdentityTarget)
{
    Rng rng(5);
    const Sequence src = makeRandomSequence(rng, 400, "SRC");
    const Sequence mut = mutate(rng, src, 0.9, "MUT", "");
    // Compare ungapped prefix identity; indels shift things, so just
    // require lengths stay close and most residues materialize.
    EXPECT_NEAR(static_cast<double>(mut.length()),
                static_cast<double>(src.length()), 40.0);
}

TEST(Synthetic, RandomSequenceUsesRealResiduesOnly)
{
    Rng rng(11);
    const Sequence s = makeRandomSequence(rng, 1000);
    for (std::size_t i = 0; i < s.length(); ++i)
        EXPECT_LT(s[i], Alphabet::numRealResidues);
}

} // namespace
