/**
 * @file
 * Golden-value regression test for the pipeline simulator's
 * bit-for-bit determinism across optimizations.
 *
 * The inner-loop overhaul (idle-cycle fast-forward, ring buffers,
 * store-watermark dependence checks, devirtualized predictors) must
 * not move a single counter: every SimStats a config grid produces
 * is pinned here against values captured from the pre-optimization
 * simulator. The pin is SimStats::fingerprint() — an FNV-1a digest
 * over every counter and histogram — plus cycles, instructions and
 * the trauma total in the clear so a drift points at itself.
 *
 * Regenerating (only legitimate after an *intentional* model
 * change, never to absorb an optimization's drift):
 *
 *   BIOARCH_REGEN_GOLDEN=1 ./sim_golden_test
 *
 * prints the replacement kGolden table to stdout.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>

#include "core/suite.hh"

namespace
{

using namespace bioarch;

/** dbSequences=3 keeps the 45-point grid fast while still running
 * every kernel through its hit and miss paths. */
core::WorkloadSuite &
goldenSuite()
{
    static core::WorkloadSuite s([] {
        kernels::TraceSpec spec;
        spec.dbSequences = 3;
        return spec;
    }());
    return s;
}

const std::array<sim::CoreConfig, 3> &
goldenCores()
{
    static const std::array<sim::CoreConfig, 3> cores = {
        sim::core4Way(), sim::core8Way(), sim::core16Way()};
    return cores;
}

const std::array<sim::MemoryConfig, 3> &
goldenMemories()
{
    static const std::array<sim::MemoryConfig, 3> mems = {
        sim::memoryMe1(), sim::memoryMe4(), sim::memoryInf()};
    return mems;
}

struct Golden
{
    int workload;
    int core;
    int memory;
    std::uint64_t cycles;
    std::uint64_t instructions;
    std::uint64_t traumaTotal;
    std::uint64_t fingerprint;
};

// Captured from the pre-optimization (cycle-at-a-time, deque-based)
// simulator at commit ca1a85c; the optimized loop must reproduce
// every value exactly.
constexpr Golden kGolden[] = {
    // clang-format off
    {0, 0, 0, 1209222ull, 2979491ull, 5112781ull, 11381711336113869614ull},
    {0, 0, 1, 1185963ull, 2979491ull, 4831772ull, 15084768175251950078ull},
    {0, 0, 2, 1185326ull, 2979491ull, 4822169ull, 13463189184585089849ull},
    {0, 1, 0, 1098104ull, 2979491ull, 6180100ull, 9691919488812798931ull},
    {0, 1, 1, 1074824ull, 2979491ull, 5898949ull, 15786473882009978569ull},
    {0, 1, 2, 1074172ull, 2979491ull, 5889527ull, 9617647163484039824ull},
    {0, 2, 0, 1090667ull, 2979491ull, 6336177ull, 4901288545317402911ull},
    {0, 2, 1, 1067387ull, 2979491ull, 6055042ull, 1280811399268930336ull},
    {0, 2, 2, 1066738ull, 2979491ull, 6045621ull, 16613244063422601402ull},
    {1, 0, 0, 241528ull, 665519ull, 8501888ull, 14888402540052800347ull},
    {1, 0, 1, 225423ull, 665519ull, 7878585ull, 1723009672027304260ull},
    {1, 0, 2, 225333ull, 665519ull, 7869386ull, 11964657083861199312ull},
    {1, 1, 0, 199629ull, 665519ull, 14657508ull, 9014310359449632812ull},
    {1, 1, 1, 187779ull, 665519ull, 13792878ull, 8115333590423784013ull},
    {1, 1, 2, 187731ull, 665519ull, 13785329ull, 6945293185941906087ull},
    {1, 2, 0, 199585ull, 665519ull, 15334761ull, 1708526078436947439ull},
    {1, 2, 1, 187777ull, 665519ull, 14473541ull, 3969264459105632645ull},
    {1, 2, 2, 187729ull, 665519ull, 14466221ull, 12601661462915297636ull},
    {2, 0, 0, 188083ull, 595099ull, 8100901ull, 4758912360857430352ull},
    {2, 0, 1, 169577ull, 595099ull, 7458812ull, 2362253138101866668ull},
    {2, 0, 2, 169368ull, 595099ull, 7447593ull, 15169390219856565294ull},
    {2, 1, 0, 175675ull, 595099ull, 11815350ull, 950274352427509306ull},
    {2, 1, 1, 159670ull, 595099ull, 10769060ull, 12004127829145749008ull},
    {2, 1, 2, 159618ull, 595099ull, 10760851ull, 7835897839674815242ull},
    {2, 2, 0, 175603ull, 595099ull, 12087312ull, 13362979644709697813ull},
    {2, 2, 1, 159645ull, 595099ull, 11007128ull, 1764580476878585026ull},
    {2, 2, 2, 159595ull, 595099ull, 10999092ull, 12575876589143443278ull},
    {3, 0, 0, 247017ull, 422604ull, 1646171ull, 14736195290076212691ull},
    {3, 0, 1, 229043ull, 422604ull, 1443508ull, 16734892248888625078ull},
    {3, 0, 2, 228527ull, 422604ull, 1436084ull, 10753083393138425526ull},
    {3, 1, 0, 246188ull, 422604ull, 3967176ull, 10647810060472347246ull},
    {3, 1, 1, 228186ull, 422604ull, 3761383ull, 5293089095565268315ull},
    {3, 1, 2, 227763ull, 422604ull, 3755294ull, 6072932512423787150ull},
    {3, 2, 0, 245995ull, 422604ull, 4150449ull, 5173791698448254437ull},
    {3, 2, 1, 227985ull, 422604ull, 3944630ull, 17798952797473895112ull},
    {3, 2, 2, 227555ull, 422604ull, 3938583ull, 2913300401371481684ull},
    {4, 0, 0, 214680ull, 232166ull, 1765341ull, 10623820105069965465ull},
    {4, 0, 1, 135623ull, 232166ull, 860550ull, 7523080979568496623ull},
    {4, 0, 2, 133050ull, 232166ull, 825317ull, 14189281689999708336ull},
    {4, 1, 0, 213564ull, 232166ull, 2926896ull, 17962293278677552363ull},
    {4, 1, 1, 134766ull, 232166ull, 2049690ull, 12191694478106115904ull},
    {4, 1, 2, 132242ull, 232166ull, 2016080ull, 1392109962280197310ull},
    {4, 2, 0, 213430ull, 232166ull, 3048016ull, 5247840073561348594ull},
    {4, 2, 1, 134590ull, 232166ull, 2170757ull, 9011628579560958561ull},
    {4, 2, 2, 132040ull, 232166ull, 2137087ull, 4431759575676280093ull},
    // clang-format on
};

TEST(SimGolden, StatsMatchPreOptimizationSimulator)
{
    const bool regen =
        std::getenv("BIOARCH_REGEN_GOLDEN") != nullptr;
    std::size_t idx = 0;
    for (int w = 0; w < kernels::numWorkloads; ++w) {
        const trace::Trace &tr = goldenSuite().trace(
            static_cast<kernels::Workload>(w));
        for (std::size_t c = 0; c < goldenCores().size(); ++c) {
            for (std::size_t m = 0; m < goldenMemories().size();
                 ++m) {
                sim::SimConfig cfg;
                cfg.core = goldenCores()[c];
                cfg.memory = goldenMemories()[m];
                const sim::SimStats stats =
                    core::simulate(tr, cfg);
                if (regen) {
                    std::printf(
                        "    {%d, %zu, %zu, %lluull, %lluull, "
                        "%lluull, %lluull},\n",
                        w, c, m,
                        static_cast<unsigned long long>(
                            stats.cycles),
                        static_cast<unsigned long long>(
                            stats.instructions),
                        static_cast<unsigned long long>(
                            stats.traumas.total()),
                        static_cast<unsigned long long>(
                            stats.fingerprint()));
                    continue;
                }
                ASSERT_LT(idx, std::size(kGolden));
                const Golden &g = kGolden[idx];
                ASSERT_EQ(g.workload, w);
                ASSERT_EQ(g.core, static_cast<int>(c));
                ASSERT_EQ(g.memory, static_cast<int>(m));
                const std::string where = std::string(
                    kernels::workloadName(
                        static_cast<kernels::Workload>(w)))
                    + " / " + cfg.core.name + " / "
                    + cfg.memory.name;
                EXPECT_EQ(stats.cycles, g.cycles) << where;
                EXPECT_EQ(stats.instructions, g.instructions)
                    << where;
                EXPECT_EQ(stats.traumas.total(), g.traumaTotal)
                    << where;
                EXPECT_EQ(stats.fingerprint(), g.fingerprint)
                    << where
                    << " — some counter or histogram drifted";
                ++idx;
            }
        }
    }
    if (regen)
        GTEST_SKIP() << "golden table printed; paste into kGolden";
    EXPECT_EQ(idx, std::size(kGolden));
}

/** fingerprint() must be sensitive to every field it pins. */
TEST(SimGolden, FingerprintDetectsSingleCounterDrift)
{
    sim::SimConfig cfg;
    const sim::SimStats base = core::simulate(
        goldenSuite().trace(kernels::Workload::Blast), cfg);

    sim::SimStats tweaked = base;
    tweaked.traumas.cycles[5] += 1;
    EXPECT_NE(base.fingerprint(), tweaked.fingerprint());

    tweaked = base;
    tweaked.dtlb2Misses += 1;
    EXPECT_NE(base.fingerprint(), tweaked.fingerprint());

    tweaked = base;
    ASSERT_FALSE(tweaked.inflightOccupancy.empty());
    tweaked.inflightOccupancy.back() += 1;
    EXPECT_NE(base.fingerprint(), tweaked.fingerprint());

    // Histogram *shape* is pinned too, not just its values.
    tweaked = base;
    tweaked.inflightOccupancy.push_back(0);
    EXPECT_NE(base.fingerprint(), tweaked.fingerprint());
}

} // namespace
