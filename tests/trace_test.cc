/**
 * @file
 * Unit tests for the trace container and the Tracer emission API.
 */

#include <gtest/gtest.h>

#include "trace/trace.hh"
#include "trace/tracer.hh"

namespace
{

using namespace bioarch;
using trace::Reg;
using trace::Tracer;

TEST(Tracer, AssignsFreshSsaRegisters)
{
    Tracer t("t");
    const Reg a = t.alu();
    const Reg b = t.alu();
    EXPECT_TRUE(a.valid());
    EXPECT_TRUE(b.valid());
    EXPECT_NE(a.id, b.id);
}

TEST(Tracer, RecordsDependencies)
{
    Tracer t("t");
    const Reg a = t.alu();
    const Reg b = t.alu();
    t.alu({a, b});
    const trace::Trace tr = t.take();
    ASSERT_EQ(tr.size(), 3u);
    EXPECT_EQ(tr[2].src[0], a.id);
    EXPECT_EQ(tr[2].src[1], b.id);
    EXPECT_EQ(tr[2].cls, isa::OpClass::IntAlu);
}

TEST(Tracer, InvalidRegsAreNotRecordedAsSources)
{
    Tracer t("t");
    const Reg a = t.alu();
    t.alu({Reg{}, a});
    const trace::Trace tr = t.take();
    EXPECT_EQ(tr[1].src[0], a.id);
    EXPECT_EQ(tr[1].src[1], 0u);
}

TEST(Tracer, SameCallSiteGetsSamePc)
{
    Tracer t("t");
    for (int i = 0; i < 3; ++i)
        t.alu(); // one textual site, three dynamic instances
    const Reg a = t.alu(); // a different site
    (void)a;
    const trace::Trace tr = t.take();
    ASSERT_EQ(tr.size(), 4u);
    EXPECT_EQ(tr[0].pc, tr[1].pc);
    EXPECT_EQ(tr[1].pc, tr[2].pc);
    EXPECT_NE(tr[2].pc, tr[3].pc);
    EXPECT_EQ(tr.staticFootprint(), 2u);
}

TEST(Tracer, LoadsCarryAddressAndSize)
{
    Tracer t("t");
    const isa::Addr base = t.alloc(64, "buf");
    t.load(base + 8, 4);
    t.store(base + 16, 8, Reg{});
    const trace::Trace tr = t.take();
    ASSERT_EQ(tr.size(), 2u);
    EXPECT_EQ(tr[0].addr, base + 8);
    EXPECT_EQ(tr[0].size, 4);
    EXPECT_TRUE(tr[0].isLoad());
    EXPECT_EQ(tr[1].addr, base + 16);
    EXPECT_TRUE(tr[1].isStore());
}

TEST(Tracer, AllocationsAreAlignedAndDisjoint)
{
    Tracer t("t");
    const isa::Addr a = t.alloc(3, "a");
    const isa::Addr b = t.alloc(100, "b");
    const isa::Addr c = t.alloc(1, "c");
    EXPECT_EQ(a % 16, 0u);
    EXPECT_EQ(b % 16, 0u);
    EXPECT_GE(b, a + 3);
    EXPECT_GE(c, b + 100);
    EXPECT_GE(t.allocatedBytes(), 104u);
}

TEST(Tracer, BranchOutcomesAreRecorded)
{
    Tracer t("t");
    t.branch(true);
    t.branch(false);
    t.jump();
    const trace::Trace tr = t.take();
    ASSERT_EQ(tr.size(), 3u);
    EXPECT_TRUE(tr[0].taken);
    EXPECT_TRUE(tr[0].conditional);
    EXPECT_FALSE(tr[1].taken);
    EXPECT_TRUE(tr[2].taken);
    EXPECT_FALSE(tr[2].conditional);
    EXPECT_EQ(tr.conditionalBranches(), 2u);
}

TEST(Tracer, VectorOpsGetVectorClasses)
{
    Tracer t("t");
    const isa::Addr base = t.alloc(64, "v");
    const Reg v = t.vload(base, 16);
    const Reg p = t.vperm({v});
    const Reg s = t.vsimple({p});
    t.vcomplex({s});
    t.vstore(base + 16, 16, s);
    const trace::Trace tr = t.take();
    EXPECT_EQ(tr[0].cls, isa::OpClass::VecLoad);
    EXPECT_EQ(tr[1].cls, isa::OpClass::VecPerm);
    EXPECT_EQ(tr[2].cls, isa::OpClass::VecSimple);
    EXPECT_EQ(tr[3].cls, isa::OpClass::VecComplex);
    EXPECT_EQ(tr[4].cls, isa::OpClass::VecStore);
    EXPECT_TRUE(isa::isVector(tr[0].cls));
    EXPECT_FALSE(isa::isVector(isa::OpClass::IntAlu));
}

TEST(TraceMix, FractionsSumToOne)
{
    Tracer t("t");
    const isa::Addr base = t.alloc(64, "m");
    for (int i = 0; i < 10; ++i)
        t.alu();
    for (int i = 0; i < 5; ++i)
        t.load(base, 4);
    for (int i = 0; i < 5; ++i)
        t.branch(i % 2 == 0);
    const trace::Trace tr = t.take();
    const trace::InstructionMix mix = tr.mix();
    EXPECT_EQ(mix.total, 20u);
    EXPECT_DOUBLE_EQ(mix.fraction(isa::OpClass::IntAlu), 0.5);
    EXPECT_DOUBLE_EQ(mix.loadFraction(), 0.25);
    EXPECT_DOUBLE_EQ(mix.ctrlFraction(), 0.25);
    double sum = 0.0;
    for (int c = 0; c < isa::numOpClasses; ++c)
        sum += mix.fraction(static_cast<isa::OpClass>(c));
    EXPECT_NEAR(sum, 1.0, 1e-12);
}

TEST(OpClass, NamesMatchPaperLegend)
{
    EXPECT_EQ(isa::opClassName(isa::OpClass::IntAlu), "ialu");
    EXPECT_EQ(isa::opClassName(isa::OpClass::Branch), "ctrl");
    EXPECT_EQ(isa::opClassName(isa::OpClass::VecSimple), "vsimple");
    EXPECT_EQ(isa::opClassName(isa::OpClass::VecPerm), "vperm");
}

} // namespace
