/**
 * @file
 * Unit tests for the software Altivec vector model.
 */

#include <gtest/gtest.h>

#include "vec/simd.hh"

namespace
{

using bioarch::vec::Vec128;
using bioarch::vec::Vec256;
using bioarch::vec::VecI16;

TEST(Vec, SplatFillsAllLanes)
{
    const Vec128 v = Vec128::splat(7);
    for (int i = 0; i < Vec128::lanes; ++i)
        EXPECT_EQ(v[i], 7);
    EXPECT_EQ(Vec128::bits, 128);
    EXPECT_EQ(Vec256::bits, 256);
}

TEST(Vec, LoadStoreRoundTrip)
{
    std::int16_t data[8] = {1, -2, 3, -4, 5, -6, 7, -8};
    const Vec128 v = Vec128::load(data);
    std::int16_t out[8] = {};
    v.store(out);
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(out[i], data[i]);
}

TEST(Vec, SaturatingAdd)
{
    const Vec128 a = Vec128::splat(32000);
    const Vec128 b = Vec128::splat(1000);
    const Vec128 sum = adds(a, b);
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(sum[i], 32767); // saturated, no wraparound
}

TEST(Vec, SaturatingSub)
{
    const Vec128 a = Vec128::splat(-32000);
    const Vec128 b = Vec128::splat(1000);
    const Vec128 diff = subs(a, b);
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(diff[i], -32768);
}

TEST(Vec, AddSubSmallValues)
{
    Vec128 a;
    Vec128 b;
    for (int i = 0; i < 8; ++i) {
        a.set(i, static_cast<std::int16_t>(i * 3));
        b.set(i, static_cast<std::int16_t>(i - 4));
    }
    const Vec128 sum = adds(a, b);
    const Vec128 diff = subs(a, b);
    for (int i = 0; i < 8; ++i) {
        EXPECT_EQ(sum[i], i * 3 + (i - 4));
        EXPECT_EQ(diff[i], i * 3 - (i - 4));
    }
}

TEST(Vec, MaxMinLanewise)
{
    Vec128 a;
    Vec128 b;
    for (int i = 0; i < 8; ++i) {
        a.set(i, static_cast<std::int16_t>(i));
        b.set(i, static_cast<std::int16_t>(7 - i));
    }
    const Vec128 mx = vmax(a, b);
    const Vec128 mn = vmin(a, b);
    for (int i = 0; i < 8; ++i) {
        EXPECT_EQ(mx[i], std::max(i, 7 - i));
        EXPECT_EQ(mn[i], std::min(i, 7 - i));
    }
}

TEST(Vec, CompareAndSelect)
{
    Vec128 a;
    Vec128 b;
    for (int i = 0; i < 8; ++i) {
        a.set(i, static_cast<std::int16_t>(i));
        b.set(i, 4);
    }
    const Vec128 mask = cmpgt(a, b); // lanes 5..7 true
    const Vec128 sel = select(mask, a, b);
    for (int i = 0; i < 8; ++i) {
        EXPECT_EQ(mask[i], i > 4 ? -1 : 0);
        EXPECT_EQ(sel[i], i > 4 ? i : 4);
    }
}

TEST(Vec, ShiftInLowMovesLanesUp)
{
    Vec128 a;
    for (int i = 0; i < 8; ++i)
        a.set(i, static_cast<std::int16_t>(i + 1));
    const Vec128 shifted = shiftInLow(a, 99);
    EXPECT_EQ(shifted[0], 99);
    for (int i = 1; i < 8; ++i)
        EXPECT_EQ(shifted[i], i); // old lane i-1 == i
}

TEST(Vec, ShiftInHighMovesLanesDown)
{
    Vec128 a;
    for (int i = 0; i < 8; ++i)
        a.set(i, static_cast<std::int16_t>(i + 1));
    const Vec128 shifted = shiftInHigh(a, 99);
    EXPECT_EQ(shifted[7], 99);
    for (int i = 0; i < 7; ++i)
        EXPECT_EQ(shifted[i], i + 2);
}

TEST(Vec, ShiftsAreInverseAtBoundaryLanes)
{
    Vec128 a;
    for (int i = 0; i < 8; ++i)
        a.set(i, static_cast<std::int16_t>(10 * i));
    const Vec128 up_down = shiftInHigh(shiftInLow(a, 0), 0);
    for (int i = 0; i < 7; ++i)
        EXPECT_EQ(up_down[i], a[i]);
    EXPECT_EQ(up_down[7], 0);
}

TEST(Vec, HorizontalMax)
{
    Vec256 a;
    for (int i = 0; i < 16; ++i)
        a.set(i, static_cast<std::int16_t>(i == 11 ? 500 : i));
    EXPECT_EQ(horizontalMax(a), 500);
}

TEST(Vec, AnyGreater)
{
    Vec128 a = Vec128::splat(3);
    EXPECT_FALSE(anyGreater(a, 3));
    a.set(5, 4);
    EXPECT_TRUE(anyGreater(a, 3));
}

TEST(Vec, DefaultConstructedIsZero)
{
    const Vec256 v;
    for (int i = 0; i < 16; ++i)
        EXPECT_EQ(v[i], 0);
}

TEST(Vec, EqualityComparesAllLanes)
{
    Vec128 a = Vec128::splat(1);
    Vec128 b = Vec128::splat(1);
    EXPECT_EQ(a, b);
    b.set(7, 2);
    EXPECT_NE(a, b);
}

} // namespace
