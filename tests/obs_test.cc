/**
 * @file
 * Tests for the observability subsystem (src/obs): the lock-sharded
 * metrics registry, the power-of-two histogram with
 * hoisted-at-construction bucket bounds, scoped trace spans, and the
 * JSON / Prometheus snapshot exporters.
 */

#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.hh"
#include "obs/snapshot.hh"

namespace
{

using namespace bioarch;

TEST(Registry, SameNameReturnsSameMetric)
{
    obs::Registry reg;
    obs::Counter &a = reg.counter("events_total");
    obs::Counter &b = reg.counter("events_total");
    EXPECT_EQ(&a, &b);
    a.inc(3);
    b.inc(2);
    EXPECT_EQ(reg.counterValue("events_total"), 5u);

    // Distinct label sets are distinct metrics under one name.
    obs::Counter &x = reg.counter("scans_total", "backend=\"sse2\"");
    obs::Counter &y = reg.counter("scans_total", "backend=\"avx2\"");
    EXPECT_NE(&x, &y);
    x.inc();
    EXPECT_EQ(reg.counterValue("scans_total", "backend=\"sse2\""),
              1u);
    EXPECT_EQ(reg.counterValue("scans_total", "backend=\"avx2\""),
              0u);
    EXPECT_EQ(reg.counterValue("unregistered"), 0u);
}

TEST(Registry, TypeMismatchThrows)
{
    obs::Registry reg;
    reg.counter("metric_a");
    EXPECT_THROW(reg.gauge("metric_a"), std::logic_error);
    EXPECT_THROW(reg.histogram("metric_a"), std::logic_error);
    reg.histogram("metric_b");
    EXPECT_THROW(reg.counter("metric_b"), std::logic_error);
}

TEST(Registry, ConcurrentRegistrationAndUpdates)
{
    obs::Registry reg;
    constexpr int threads = 8;
    constexpr int iters = 200;
    std::vector<std::thread> pool;
    for (int t = 0; t < threads; ++t) {
        pool.emplace_back([&reg, t] {
            for (int i = 0; i < iters; ++i) {
                // Shared and per-thread names, from all threads.
                reg.counter("shared_total").inc();
                reg.counter("per_thread_total",
                            "t=\"" + std::to_string(t) + "\"")
                    .inc();
                reg.histogram("latency_us")
                    .record(static_cast<double>(i));
                reg.gauge("depth").set(static_cast<double>(i));
            }
        });
    }
    for (std::thread &th : pool)
        th.join();

    EXPECT_EQ(reg.counterValue("shared_total"),
              static_cast<std::uint64_t>(threads) * iters);
    for (int t = 0; t < threads; ++t)
        EXPECT_EQ(reg.counterValue("per_thread_total",
                                   "t=\"" + std::to_string(t)
                                       + "\""),
                  static_cast<std::uint64_t>(iters));
    EXPECT_EQ(reg.histogram("latency_us").count(),
              static_cast<std::size_t>(threads) * iters);
}

TEST(Histogram, BucketBoundsHoistedAndExact)
{
    const std::array<double, obs::Histogram::numBuckets> &bounds =
        obs::Histogram::bucketBounds();
    // Same table on every call (computed once, not per call).
    EXPECT_EQ(&bounds, &obs::Histogram::bucketBounds());
    for (int i = 0; i < obs::Histogram::numBuckets; ++i)
        EXPECT_DOUBLE_EQ(bounds[i], std::exp2(i + 1)) << i;

    EXPECT_EQ(obs::Histogram::bucketOf(0.0), 0);
    EXPECT_EQ(obs::Histogram::bucketOf(1.9), 0);
    EXPECT_EQ(obs::Histogram::bucketOf(2.0), 1);
    EXPECT_EQ(obs::Histogram::bucketOf(3.9), 1);
    EXPECT_EQ(obs::Histogram::bucketOf(4.0), 2);
    EXPECT_EQ(obs::Histogram::bucketOf(1000.0), 9);
    // Degenerate inputs all land in bucket 0.
    EXPECT_EQ(obs::Histogram::bucketOf(-5.0), 0);
    EXPECT_EQ(obs::Histogram::bucketOf(std::nan("")), 0);
}

TEST(Histogram, SummaryIsExactOverSamples)
{
    obs::Histogram h;
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.summary().count, 0u);

    for (const double v : {10.0, 20.0, 30.0, 40.0})
        h.record(v);
    const obs::HistogramSummary s = h.summary();
    EXPECT_EQ(s.count, 4u);
    EXPECT_DOUBLE_EQ(s.sum, 100.0);
    EXPECT_DOUBLE_EQ(s.mean, 25.0);
    EXPECT_DOUBLE_EQ(s.p50, 25.0); // R-7 linear interpolation
    EXPECT_DOUBLE_EQ(s.max, 40.0);

    const std::array<std::uint64_t, obs::Histogram::numBuckets>
        counts = h.bucketCounts();
    EXPECT_EQ(counts[3], 1u); // 10 in [8,16)
    EXPECT_EQ(counts[4], 2u); // 20, 30 in [16,32)
    EXPECT_EQ(counts[5], 1u); // 40 in [32,64)
}

TEST(ScopedSpan, RecordsOnDestructionUnlessCancelled)
{
    obs::Histogram h;
    {
        const obs::ScopedSpan span(h);
        EXPECT_GE(span.elapsedUs(), 0.0);
    }
    EXPECT_EQ(h.count(), 1u);
    {
        obs::ScopedSpan span(h);
        span.cancel();
    }
    EXPECT_EQ(h.count(), 1u); // cancelled span records nothing
}

TEST(Snapshot, SortedByNameAndLabels)
{
    obs::Registry reg;
    reg.counter("b_total").inc(2);
    reg.gauge("a_gauge").set(1.5);
    reg.counter("scans_total", "backend=\"sse41\"").inc();
    reg.counter("scans_total", "backend=\"avx2\"").inc();
    reg.histogram("lat_us").record(3.0);

    const std::vector<obs::MetricSnapshot> snap = reg.snapshot();
    ASSERT_EQ(snap.size(), 5u);
    for (std::size_t i = 1; i < snap.size(); ++i) {
        const bool ordered = snap[i - 1].name < snap[i].name
            || (snap[i - 1].name == snap[i].name
                && snap[i - 1].labels < snap[i].labels);
        EXPECT_TRUE(ordered) << i;
    }
    EXPECT_EQ(snap[0].name, "a_gauge");
    EXPECT_EQ(snap[0].type, obs::MetricType::Gauge);
    EXPECT_DOUBLE_EQ(snap[0].value, 1.5);
    EXPECT_EQ(snap[3].labels, "backend=\"avx2\"");
    EXPECT_EQ(snap[4].labels, "backend=\"sse41\"");
}

TEST(Snapshot, JsonShapeAndCumulativeBuckets)
{
    obs::Registry reg;
    reg.counter("served_total").inc(7);
    obs::Histogram &h = reg.histogram("wait_us");
    h.record(1.0); // bucket 0, le 2
    h.record(5.0); // bucket 2, le 8

    const std::string json = obs::toJson(reg);
    EXPECT_NE(json.find("\"version\":1"), std::string::npos);
    EXPECT_NE(json.find("\"name\":\"served_total\""),
              std::string::npos);
    EXPECT_NE(json.find("\"type\":\"counter\""),
              std::string::npos);
    EXPECT_NE(json.find("\"value\":7"), std::string::npos);
    EXPECT_NE(json.find("\"type\":\"histogram\""),
              std::string::npos);
    EXPECT_NE(json.find("\"count\":2"), std::string::npos);
    // Buckets are cumulative and trimmed at the first bucket
    // holding every sample: le=2 has 1, le=8 has 2, nothing after.
    EXPECT_NE(json.find("{\"le\":2,\"count\":1}"),
              std::string::npos);
    EXPECT_NE(json.find("{\"le\":8,\"count\":2}"),
              std::string::npos);
    EXPECT_EQ(json.find("{\"le\":16"), std::string::npos);
}

TEST(Snapshot, PrometheusExposition)
{
    obs::Registry reg;
    reg.counter("scans_total", "backend=\"avx2\"").inc(3);
    reg.gauge("queue_depth").set(4.0);
    obs::Histogram &h = reg.histogram("wait_us");
    h.record(1.0);
    h.record(5.0);

    const std::string text = obs::toPrometheus(reg);
    EXPECT_NE(text.find("# TYPE scans_total counter"),
              std::string::npos);
    EXPECT_NE(text.find("scans_total{backend=\"avx2\"} 3"),
              std::string::npos);
    EXPECT_NE(text.find("# TYPE queue_depth gauge"),
              std::string::npos);
    EXPECT_NE(text.find("queue_depth 4"), std::string::npos);
    EXPECT_NE(text.find("# TYPE wait_us histogram"),
              std::string::npos);
    EXPECT_NE(text.find("wait_us_bucket{le=\"2\"} 1"),
              std::string::npos);
    EXPECT_NE(text.find("wait_us_bucket{le=\"+Inf\"} 2"),
              std::string::npos);
    EXPECT_NE(text.find("wait_us_sum 6"), std::string::npos);
    EXPECT_NE(text.find("wait_us_count 2"), std::string::npos);
}

} // namespace
