/**
 * @file
 * Tests for the core characterization framework: workload suite
 * caching, simulate(), sweeps, and report formatting.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <sstream>

#include "core/report.hh"
#include "core/suite.hh"

namespace
{

using namespace bioarch;

TEST(WorkloadSuite, CachesTracedRuns)
{
    kernels::TraceSpec spec;
    spec.dbSequences = 2;
    core::WorkloadSuite suite(spec);
    const trace::Trace &a = suite.trace(kernels::Workload::Blast);
    const trace::Trace &b = suite.trace(kernels::Workload::Blast);
    EXPECT_EQ(&a, &b) << "second access must reuse the cached run";
    EXPECT_GT(a.size(), 0u);
}

TEST(WorkloadSuite, SpecIsHonored)
{
    kernels::TraceSpec spec;
    spec.dbSequences = 3;
    core::WorkloadSuite suite(spec);
    EXPECT_EQ(suite.input().db.size(), 3u);
    EXPECT_EQ(suite.spec().dbSequences, 3);
}

TEST(WorkloadSuite, BenchSpecReadsEnvironment)
{
    ::setenv("BIOARCH_DB_SEQS", "5", 1);
    EXPECT_EQ(core::WorkloadSuite::benchSpec().dbSequences, 5);
    ::setenv("BIOARCH_DB_SEQS", "garbage", 1);
    EXPECT_GT(core::WorkloadSuite::benchSpec().dbSequences, 0);
    ::unsetenv("BIOARCH_DB_SEQS");
    EXPECT_GT(core::WorkloadSuite::benchSpec().dbSequences, 0);
}

TEST(Sweeps, MatchPaperPresets)
{
    const auto &cores = core::coreSweep();
    EXPECT_EQ(cores[0].fetchWidth, 4);
    EXPECT_EQ(cores[1].fetchWidth, 8);
    EXPECT_EQ(cores[2].fetchWidth, 16);
    const auto &mems = core::memorySweep();
    EXPECT_EQ(mems[0].name, "me1");
    EXPECT_EQ(mems[4].name, "meinf");
    EXPECT_TRUE(mems[4].dl1.infinite());
}

TEST(Simulate, RunsFreshStateEachCall)
{
    kernels::TraceSpec spec;
    spec.dbSequences = 2;
    core::WorkloadSuite suite(spec);
    const trace::Trace &tr =
        suite.trace(kernels::Workload::Fasta34);
    sim::SimConfig cfg;
    const sim::SimStats a = core::simulate(tr, cfg);
    const sim::SimStats b = core::simulate(tr, cfg);
    // Deterministic and state-free across calls.
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.dl1Misses, b.dl1Misses);
    EXPECT_EQ(a.branchMispredictions, b.branchMispredictions);
}

TEST(Report, AlignsColumns)
{
    core::Table t({"name", "value"});
    t.row().add("x").add(1);
    t.row().add("longer-name").add(12345);
    std::ostringstream out;
    t.print(out);
    const std::string text = out.str();
    EXPECT_NE(text.find("longer-name"), std::string::npos);
    EXPECT_NE(text.find("12345"), std::string::npos);
    // Header separator present.
    EXPECT_NE(text.find("----"), std::string::npos);
    // All lines of a table end aligned: same number of lines as
    // rows + header + separator.
    const auto lines = std::count(text.begin(), text.end(), '\n');
    EXPECT_EQ(lines, 4);
}

TEST(Report, FormatsNumbers)
{
    core::Table t({"a", "b", "c"});
    t.row().add(3.14159, 2).add(std::uint64_t{42}).add(-7);
    std::ostringstream out;
    t.print(out);
    EXPECT_NE(out.str().find("3.14"), std::string::npos);
    EXPECT_NE(out.str().find("42"), std::string::npos);
    EXPECT_NE(out.str().find("-7"), std::string::npos);
}

TEST(Report, EmitsCsv)
{
    core::Table t({"h1", "h2"});
    t.row().add("a").add(1);
    t.row().add("b").add(2);
    std::ostringstream out;
    t.printCsv(out);
    EXPECT_EQ(out.str(), "h1,h2\na,1\nb,2\n");
}

TEST(Report, HeadingFormat)
{
    std::ostringstream out;
    core::printHeading(out, "Title");
    EXPECT_NE(out.str().find("== Title =="), std::string::npos);
}

} // namespace
