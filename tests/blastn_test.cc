/**
 * @file
 * Tests for the nucleotide substrate (packed DNA) and the blastn
 * pipeline of the paper's Listing 1.
 */

#include <gtest/gtest.h>

#include "align/blastn.hh"
#include "align/smith_waterman.hh"
#include "bio/nucleotide.hh"
#include "bio/random.hh"
#include "bio/scoring.hh"

namespace
{

using namespace bioarch;
using bio::PackedDna;

TEST(NucAlphabet, RoundTrips)
{
    for (char c : std::string("ACGT")) {
        EXPECT_EQ(bio::NucAlphabet::decode(
                      bio::NucAlphabet::encode(c)),
                  c);
    }
    EXPECT_EQ(bio::NucAlphabet::encode('a'),
              bio::NucAlphabet::encode('A'));
    EXPECT_EQ(bio::NucAlphabet::encode('N'), 0); // collapses to A
}

TEST(PackedDna, PacksAndUnpacksExactly)
{
    const std::string seq = "ACGTACGTTTGGCCAATACG";
    const PackedDna dna("D", seq);
    EXPECT_EQ(dna.length(), seq.size());
    EXPECT_EQ(dna.toString(), seq);
    // 20 bases -> 5 bytes.
    EXPECT_EQ(dna.bytes().size(), 5u);
    // Per-base accessor (READDB_UNPACK_BASE) agrees.
    for (std::size_t i = 0; i < seq.size(); ++i)
        EXPECT_EQ(bio::NucAlphabet::decode(dna[i]), seq[i]);
}

TEST(PackedDna, NonMultipleOfFourLengths)
{
    for (const std::string seq :
         {std::string("A"), std::string("ACG"),
          std::string("ACGTA")}) {
        const PackedDna dna("D", seq);
        EXPECT_EQ(dna.toString(), seq);
    }
    EXPECT_TRUE(PackedDna("E", "").empty());
}

TEST(PackedDna, PackingIsFourBasesPerByte)
{
    // "AAAA" -> 0x00; "TTTT" -> 0xFF; "ACGT" -> 0b00011011.
    EXPECT_EQ(PackedDna("D", "AAAA").bytes()[0], 0x00);
    EXPECT_EQ(PackedDna("D", "TTTT").bytes()[0], 0xFF);
    EXPECT_EQ(PackedDna("D", "ACGT").bytes()[0], 0b00011011);
}

TEST(DnaWordIndex, FindsExactWords)
{
    const PackedDna q("Q", "ACGTACGTAC"); // ACGTACGT at 0, ...
    const align::DnaWordIndex index(q, 8);
    EXPECT_EQ(index.wordSize(), 8);
    // Word "ACGTACGT" = interleaved 2-bit values.
    std::uint32_t w = 0;
    for (char c : std::string("ACGTACGT"))
        w = (w << 2) | bio::NucAlphabet::encode(c);
    const auto [begin, end] = index.positions(w);
    ASSERT_EQ(end - begin, 1);
    EXPECT_EQ(*begin, 0);
    EXPECT_EQ(index.numWords(), 3u); // positions 0, 1, 2
}

TEST(Blastn, SelfSearchScoresFullLength)
{
    bio::Rng rng(7);
    const PackedDna q = bio::makeRandomDna(rng, 300, "Q");
    const align::BlastnParams params;
    const align::DnaWordIndex index(q, params.wordSize);
    const align::BlastnScores bs =
        align::blastnScan(index, q, q, params);
    EXPECT_GT(bs.wordHits, 0);
    EXPECT_GT(bs.extensionsTried, 0);
    // Ungapped self-extension covers the whole sequence.
    EXPECT_EQ(bs.bestUngapped,
              params.matchScore * static_cast<int>(q.length()));
    EXPECT_GE(bs.score, bs.bestUngapped);
}

TEST(Blastn, RandomPairsRarelyHit)
{
    // Two random 500-base sequences share an exact 8-mer only by
    // chance (expected ~ 500*500/4^8 ~ 3.8 hits) and never produce
    // a high score.
    bio::Rng rng(21);
    const PackedDna a = bio::makeRandomDna(rng, 500, "A");
    const PackedDna b = bio::makeRandomDna(rng, 500, "B");
    const align::BlastnParams params;
    const align::DnaWordIndex index(a, params.wordSize);
    const align::BlastnScores bs =
        align::blastnScan(index, a, b, params);
    EXPECT_LT(bs.wordHits, 30);
    EXPECT_LT(bs.bestUngapped, 30);
}

TEST(Blastn, UngappedScoreMatchesDecodedAlignmentOnIdentity)
{
    // For a subject equal to a window of the query, the ungapped
    // score must equal match * window length.
    bio::Rng rng(33);
    const PackedDna q = bio::makeRandomDna(rng, 400, "Q");
    std::vector<bio::Base> window;
    for (std::size_t i = 100; i < 250; ++i)
        window.push_back(q[i]);
    const PackedDna s("S", window);
    const align::BlastnParams params;
    const align::DnaWordIndex index(q, params.wordSize);
    const align::BlastnScores bs =
        align::blastnScan(index, q, s, params);
    EXPECT_EQ(bs.bestUngapped, 150 * params.matchScore);
}

TEST(Blastn, SearchRanksPlantedHomologsFirst)
{
    bio::Rng rng(55);
    const PackedDna query = bio::makeRandomDna(rng, 600, "Q");
    const bio::DnaDatabase db =
        bio::makeDnaDatabase(60, 300, 900, query, 4, 1234);
    const align::SearchResults res =
        align::blastnSearch(query, db);

    ASSERT_FALSE(res.hits.empty());
    // Top hit must be a planted homolog (id prefix "HDNA").
    const std::string &top_id = db[res.hits.front().dbIndex].id();
    EXPECT_EQ(top_id.substr(0, 4), "HDNA") << top_id;
    EXPECT_LT(res.hits.front().evalue, 1e-10);
    for (std::size_t i = 1; i < res.hits.size(); ++i)
        EXPECT_GE(res.hits[i - 1].score, res.hits[i].score);
}

TEST(Blastn, GappedExtensionRecoversIndelHomolog)
{
    // A homolog with indels scores higher gapped than ungapped.
    bio::Rng rng(77);
    const PackedDna q = bio::makeRandomDna(rng, 500, "Q");
    const PackedDna s = bio::mutateDna(rng, q, 0.9, "S");
    const align::BlastnParams params;
    const align::DnaWordIndex index(q, params.wordSize);
    const align::BlastnScores bs =
        align::blastnScan(index, q, s, params);
    EXPECT_GT(bs.gappedExtensions, 0);
    EXPECT_GT(bs.score, bs.bestUngapped);
}

TEST(Blastn, DatabaseStatistics)
{
    bio::Rng rng(3);
    const PackedDna q = bio::makeRandomDna(rng, 100, "Q");
    const bio::DnaDatabase db =
        bio::makeDnaDatabase(10, 50, 100, q, 2, 9);
    EXPECT_EQ(db.size(), 10u);
    std::uint64_t total = 0;
    for (const PackedDna &s : db)
        total += s.length();
    EXPECT_EQ(db.totalBases(), total);
}

} // namespace
