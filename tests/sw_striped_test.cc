/**
 * @file
 * Tests for the striped (Farrar) SIMD Smith-Waterman: exact score
 * equality with the scalar reference — including heavy property
 * testing across gap penalties, since the lazy-F shortcut is the
 * classic source of subtle bugs — and agreement with the other
 * SIMD kernels at the search level.
 */

#include <gtest/gtest.h>

#include "align/smith_waterman.hh"
#include "align/ssearch.hh"
#include "align/sw_simd.hh"
#include "align/sw_striped.hh"
#include "bio/random.hh"
#include "bio/scoring.hh"
#include "bio/synthetic.hh"

namespace
{

using namespace bioarch;
using bio::Sequence;

const bio::ScoringMatrix &kMat = bio::blosum62();
const bio::GapPenalties kGaps{};

TEST(StripedProfile, LayoutMatchesMatrix)
{
    const Sequence q("Q", "", "ACDEFGHIKLMNPQRS"); // 16 aa, S = 2
    const align::StripedProfile<8> profile(q, kMat);
    EXPECT_EQ(profile.segmentLength(), 2);
    const bio::Residue r = bio::Alphabet::encode('W');
    // Position s, lane l -> row s + l*S.
    for (int s = 0; s < 2; ++s) {
        const auto v = profile.vector(r, s);
        for (int l = 0; l < 8; ++l) {
            const int i = s + l * 2;
            EXPECT_EQ(v[l],
                      kMat.score(q[static_cast<std::size_t>(i)], r))
                << "s=" << s << " l=" << l;
        }
    }
}

TEST(StripedProfile, PadRowsCarrySentinel)
{
    const Sequence q("Q", "", "ACD"); // 3 aa over 8 lanes: S = 1
    const align::StripedProfile<8> profile(q, kMat);
    EXPECT_EQ(profile.segmentLength(), 1);
    const auto v = profile.vector(0, 0);
    for (int l = 3; l < 8; ++l)
        EXPECT_EQ(v[l], align::StripedProfile<8>::padScore);
}

TEST(Striped, MatchesScalarOnIdenticalSequences)
{
    const Sequence s("S", "", "ACDEFGHIKLMNPQRSTVWY");
    const align::StripedProfile<8> profile(s, kMat);
    const align::LocalScore got =
        align::swStripedScan<8>(profile, s, kGaps);
    const align::LocalScore ref =
        align::smithWatermanScore(s, s, kMat, kGaps);
    EXPECT_EQ(got.score, ref.score);
    EXPECT_EQ(got.subjectEnd, ref.subjectEnd);
}

TEST(Striped, EmptyInputsScoreZero)
{
    const Sequence q("Q", "", "ACD");
    const Sequence e("E", "", "");
    const align::StripedProfile<8> profile(q, kMat);
    EXPECT_EQ(align::swStripedScan<8>(profile, e, kGaps).score, 0);
}

TEST(Striped, LazyFTriggersOnGapHeavyAlignments)
{
    // A subject that deletes a large block from the query forces
    // vertical-gap paths: the lazy loop must run and the score must
    // still be exact.
    bio::Rng rng(99);
    const Sequence q = bio::makeRandomSequence(rng, 120);
    std::vector<bio::Residue> res(q.residues().begin(),
                                  q.residues().begin() + 40);
    res.insert(res.end(), q.residues().begin() + 90,
               q.residues().end());
    const Sequence s("S", "", std::move(res));

    const align::StripedProfile<8> profile(q, kMat);
    std::uint64_t lazy = 0;
    const align::LocalScore got =
        align::swStripedScan<8>(profile, s, kGaps, &lazy);
    EXPECT_EQ(got.score,
              align::smithWatermanScore(q, s, kMat, kGaps).score);
    EXPECT_GT(lazy, 0u) << "gap-heavy input must exercise lazy F";
}

/** The core property, at both register widths. */
template <int N>
void
checkStriped(std::uint64_t seed)
{
    bio::Rng rng(seed);
    for (int t = 0; t < 30; ++t) {
        const Sequence q = bio::makeRandomSequence(
            rng, static_cast<int>(1 + rng.below(150)));
        const Sequence s = (t % 2 == 0)
            ? bio::makeRandomSequence(
                  rng, static_cast<int>(1 + rng.below(150)))
            : bio::mutate(rng, q, 0.4 + rng.uniform() * 0.5, "S",
                          "");
        const align::StripedProfile<N> profile(q, kMat);
        const int got =
            align::swStripedScan<N>(profile, s, kGaps).score;
        const int ref =
            align::smithWatermanScore(q, s, kMat, kGaps).score;
        ASSERT_EQ(got, ref)
            << "N=" << N << " q=" << q.toString()
            << " s=" << s.toString();
    }
}

TEST(StripedProperty, Lanes8MatchesScalar) { checkStriped<8>(11); }
TEST(StripedProperty, Lanes16MatchesScalar) { checkStriped<16>(22); }

/** Gap-penalty sweep, including the degenerate extend-0 case the
 * lazy loop must survive. */
class StripedGapSweep
    : public ::testing::TestWithParam<std::pair<int, int>>
{
};

TEST_P(StripedGapSweep, MatchesScalarAcrossPenalties)
{
    const bio::GapPenalties gaps{GetParam().first,
                                 GetParam().second};
    bio::Rng rng(3131);
    for (int t = 0; t < 15; ++t) {
        const Sequence q = bio::makeRandomSequence(
            rng, static_cast<int>(5 + rng.below(90)));
        const Sequence s = bio::mutate(rng, q, 0.6, "S", "");
        const align::StripedProfile<8> profile(q, kMat);
        ASSERT_EQ(align::swStripedScan<8>(profile, s, gaps).score,
                  align::smithWatermanScore(q, s, kMat, gaps)
                      .score)
            << "open=" << gaps.open << " ext=" << gaps.extend;
    }
}

INSTANTIATE_TEST_SUITE_P(
    Penalties, StripedGapSweep,
    ::testing::Values(std::pair{10, 1}, std::pair{4, 2},
                      std::pair{12, 3}, std::pair{20, 1},
                      std::pair{10, 0}));

TEST(StripedSearch, AgreesWithSsearchScores)
{
    const Sequence query = bio::makeDefaultQuery();
    const bio::SequenceDatabase db = bio::makeDefaultDatabase(40);
    const align::SearchResults scalar =
        align::ssearchSearch(query, db, kMat, kGaps);
    const align::SearchResults striped =
        align::swStripedSearch<8>(query, db, kMat, kGaps);
    ASSERT_EQ(striped.hits.size(), scalar.hits.size());
    for (std::size_t i = 0; i < scalar.hits.size(); ++i) {
        EXPECT_EQ(striped.hits[i].score, scalar.hits[i].score);
        EXPECT_EQ(striped.hits[i].dbIndex, scalar.hits[i].dbIndex);
    }
}

TEST(StripedSearch, AgreesWithAntiDiagonalKernel)
{
    const Sequence query = bio::makeDefaultQuery();
    const bio::SequenceDatabase db = bio::makeDefaultDatabase(20);
    const align::SearchResults diag =
        align::swSimdSearch<8>(query, db, kMat, kGaps);
    const align::SearchResults striped =
        align::swStripedSearch<8>(query, db, kMat, kGaps);
    ASSERT_EQ(striped.hits.size(), diag.hits.size());
    for (std::size_t i = 0; i < diag.hits.size(); ++i)
        EXPECT_EQ(striped.hits[i].score, diag.hits[i].score);
}

} // namespace
