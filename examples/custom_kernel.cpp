/**
 * @file
 * Scenario: characterizing your own kernel.
 *
 * The Tracer API is not limited to the five built-in workloads:
 * any loop you can mirror with emission calls becomes a trace the
 * simulator will characterize. Here we write a tiny histogram
 * kernel (a common bioinformatics primitive: residue composition
 * counting) twice — a branchy variant and a branchless variant —
 * and let the simulator show why the branchless one wins on a
 * wide machine.
 */

#include <cstdio>

#include "bio/random.hh"
#include "bio/synthetic.hh"
#include "core/suite.hh"
#include "trace/tracer.hh"

using namespace bioarch;
using trace::Reg;
using trace::Tracer;

namespace
{

/** Count residues above a threshold with a data-dependent branch. */
trace::Trace
branchyCount(const bio::Sequence &seq)
{
    Tracer t("branchy-count");
    const isa::Addr data = t.alloc(seq.length(), "residues");
    Reg r_ptr = t.alu();
    Reg r_count = t.alu();
    for (std::size_t i = 0; i < seq.length(); ++i) {
        Reg r_v = t.load(data + static_cast<isa::Addr>(i), 1,
                         {r_ptr});
        t.alu({r_v}); // cmpwi
        t.branch(seq[i] >= 10, {r_v});
        if (seq[i] >= 10)
            r_count = t.alu({r_count}); // addi count, 1
        r_ptr = t.alu({r_ptr});
        t.branch(i + 1 < seq.length(), {r_ptr});
    }
    return t.take();
}

/** The same count, branchless (compare + add the flag). */
trace::Trace
branchlessCount(const bio::Sequence &seq)
{
    Tracer t("branchless-count");
    const isa::Addr data = t.alloc(seq.length(), "residues");
    Reg r_ptr = t.alu();
    Reg r_count = t.alu();
    for (std::size_t i = 0; i < seq.length(); ++i) {
        Reg r_v = t.load(data + static_cast<isa::Addr>(i), 1,
                         {r_ptr});
        Reg r_flag = t.alu({r_v});          // sltiu-style flag
        r_count = t.alu({r_count, r_flag}); // count += flag
        r_ptr = t.alu({r_ptr});
        t.branch(i + 1 < seq.length(), {r_ptr});
    }
    return t.take();
}

} // namespace

int
main()
{
    bio::Rng rng(2006);
    const bio::Sequence seq =
        bio::makeRandomSequence(rng, 50000, "DATA");

    const trace::Trace branchy = branchyCount(seq);
    const trace::Trace branchless = branchlessCount(seq);

    std::printf("kernel       instrs   ctrl%%   cycles   IPC   "
                "BP-acc   dominant stall\n");
    for (const trace::Trace *tr : {&branchy, &branchless}) {
        sim::SimConfig cfg;
        cfg.core = sim::core8Way();
        const sim::SimStats stats = core::simulate(*tr, cfg);
        const trace::InstructionMix mix = tr->mix();
        std::printf("%-11s %7zu   %4.0f%%  %7llu  %.2f   %5.1f%%   %s\n",
                    tr->name().c_str(), tr->size(),
                    100 * mix.ctrlFraction(),
                    static_cast<unsigned long long>(stats.cycles),
                    stats.ipc(),
                    100 * stats.predictionAccuracy(),
                    std::string(
                        sim::traumaName(stats.traumas.dominant()))
                        .c_str());
    }

    std::printf("\nThe branchy variant's data-dependent branch "
                "(~50%% taken) caps it\nat the flush rate; the "
                "branchless variant trades it for a 2-op\n"
                "dependency and runs near the machine's width.\n");
    return 0;
}
