/**
 * @file
 * Quickstart: the one-page tour of the library.
 *
 *  1. synthesize a protein database and a query,
 *  2. search it with the five sequence-alignment applications,
 *  3. generate an instruction trace of one of them, and
 *  4. simulate that trace on the paper's 4-way machine.
 *
 * Build and run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart
 */

#include <cstdio>

#include "align/blast.hh"
#include "align/fasta.hh"
#include "align/ssearch.hh"
#include "bio/scoring.hh"
#include "bio/synthetic.hh"
#include "core/suite.hh"

using namespace bioarch;

int
main()
{
    // --- 1. data: a query and a SwissProt-like synthetic DB -----
    const bio::Sequence query = bio::makeDefaultQuery(); // P14942
    const bio::SequenceDatabase db = bio::makeDefaultDatabase(200);
    std::printf("query %s (%zu aa) vs %zu sequences (%llu residues)\n\n",
                query.id().c_str(), query.length(), db.size(),
                static_cast<unsigned long long>(db.totalResidues()));

    // --- 2. search with three engines ----------------------------
    const bio::ScoringMatrix &matrix = bio::blosum62();
    const bio::GapPenalties gaps; // open 10, extend 1

    const align::SearchResults sw =
        align::ssearchSearch(query, db, matrix, gaps);
    const align::SearchResults fasta =
        align::fastaSearch(query, db, matrix, gaps);
    const align::SearchResults blast =
        align::blastSearch(query, db, matrix, gaps);

    std::printf("engine    best hit        score  E-value      DP cells\n");
    auto report = [&](const char *name,
                      const align::SearchResults &res) {
        if (res.hits.empty()) {
            std::printf("%-9s (no hits)\n", name);
            return;
        }
        const align::SearchHit &top = res.hits.front();
        std::printf("%-9s %-14s %6d  %-11.2e %9llu\n", name,
                    db[top.dbIndex].id().c_str(), top.score,
                    top.evalue,
                    static_cast<unsigned long long>(
                        res.cellsComputed));
    };
    report("SSEARCH", sw);
    report("FASTA", fasta);
    report("BLAST", blast);

    // --- 3. trace one application's execution --------------------
    kernels::TraceSpec spec;
    spec.dbSequences = 8; // small working set for the demo
    const kernels::TracedRun run =
        kernels::traceWorkload(kernels::Workload::Blast, spec);
    const trace::InstructionMix mix = run.trace.mix();
    std::printf("\nBLAST trace: %zu instructions "
                "(%.0f%% alu, %.0f%% loads, %.0f%% branches)\n",
                run.trace.size(),
                100 * mix.fraction(isa::OpClass::IntAlu),
                100 * mix.loadFraction(), 100 * mix.ctrlFraction());

    // --- 4. simulate it on the paper's 4-way machine -------------
    sim::SimConfig cfg; // 4-way core, 32K/32K/1M, combined BP
    const sim::SimStats stats = core::simulate(run.trace, cfg);
    std::printf("4-way me1: %llu cycles, IPC %.2f, DL1 miss %.1f%%, "
                "BP accuracy %.1f%%\n",
                static_cast<unsigned long long>(stats.cycles),
                stats.ipc(), 100 * stats.dl1MissRate(),
                100 * stats.predictionAccuracy());
    std::printf("dominant stall: %s\n",
                std::string(sim::traumaName(stats.traumas.dominant()))
                    .c_str());
    return 0;
}
