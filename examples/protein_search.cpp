/**
 * @file
 * Scenario: a sensitivity / selectivity study, the bioinformatics
 * workload the paper's introduction motivates.
 *
 * We plant homologs of a query at decreasing identity levels in a
 * background database, then compare how well the rigorous
 * Smith-Waterman (SSEARCH) and the two heuristics (FASTA, BLAST)
 * recover them, and at what computational cost — the
 * sensitivity-for-speed trade the paper describes. The top hit is
 * printed as a full alignment (the intro's "cs-ttpgg" style
 * figure).
 *
 * The example also round-trips the database through FASTA-format
 * I/O to show how to bring real data.
 */

#include <cstdio>
#include <sstream>

#include "align/blast.hh"
#include "align/fasta.hh"
#include "align/smith_waterman.hh"
#include "align/ssearch.hh"
#include "bio/fasta_io.hh"
#include "bio/scoring.hh"
#include "bio/synthetic.hh"

using namespace bioarch;

namespace
{

/** How many planted homologs appear in the top-20 hits. */
int
recovered(const align::SearchResults &res,
          const bio::SequenceDatabase &db)
{
    int found = 0;
    const std::size_t top =
        std::min<std::size_t>(res.hits.size(), 20);
    for (std::size_t i = 0; i < top; ++i) {
        if (db[res.hits[i].dbIndex].description().find("homolog")
            != std::string::npos)
            ++found;
    }
    return found;
}

} // namespace

int
main()
{
    const bio::Sequence query = bio::makeDefaultQuery();

    // A database with homologs planted at 90%, 60% and 35%
    // identity (3 of each), among 300 background proteins.
    bio::DatabaseSpec spec;
    spec.numSequences = 300;
    spec.homologsPerQuery = 3;
    spec.identityLevels = {0.9, 0.6, 0.35};
    bio::SequenceDatabase db = bio::makeDatabase(spec, {query});

    // Round-trip through the FASTA file format, as one would with
    // real data (readFastaFile works the same way on disk files).
    std::ostringstream fasta_text;
    bio::writeFasta(fasta_text, db);
    db = bio::readFastaString(fasta_text.str());
    std::printf("database: %zu sequences, %llu residues "
                "(9 planted homologs)\n\n",
                db.size(),
                static_cast<unsigned long long>(db.totalResidues()));

    const bio::ScoringMatrix &matrix = bio::blosum62();
    const bio::GapPenalties gaps;

    struct Engine
    {
        const char *name;
        align::SearchResults results;
    };
    Engine engines[] = {
        {"SSEARCH (rigorous)",
         align::ssearchSearch(query, db, matrix, gaps)},
        {"FASTA (heuristic)",
         align::fastaSearch(query, db, matrix, gaps)},
        {"BLAST (heuristic)",
         align::blastSearch(query, db, matrix, gaps)},
    };

    std::printf("engine               homologs in top-20   work "
                "(cells)   vs SSEARCH\n");
    const double sw_cells =
        static_cast<double>(engines[0].results.cellsComputed);
    for (const Engine &e : engines) {
        std::printf("%-20s %18d   %12llu   %9.1f%%\n", e.name,
                    recovered(e.results, db),
                    static_cast<unsigned long long>(
                        e.results.cellsComputed),
                    100.0
                        * static_cast<double>(
                            e.results.cellsComputed)
                        / sw_cells);
    }

    // Show the best alignment, like the paper's introduction.
    const align::SearchHit &top = engines[0].results.hits.front();
    const align::Alignment aln = align::smithWatermanAlign(
        query, db[top.dbIndex], matrix, gaps);
    std::printf("\nbest alignment: %s vs %s  score %d  "
                "identity %.0f%%\n",
                query.id().c_str(), db[top.dbIndex].id().c_str(),
                aln.score, 100 * aln.identityFraction());
    for (std::size_t off = 0; off < aln.alignedQuery.size();
         off += 60) {
        std::printf("  Q: %s\n  S: %s\n",
                    aln.alignedQuery.substr(off, 60).c_str(),
                    aln.alignedSubject.substr(off, 60).c_str());
    }
    return 0;
}
