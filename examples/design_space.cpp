/**
 * @file
 * Scenario: a micro-architect's design-space probe — the question
 * the paper's conclusions raise: what should a processor aimed at
 * sequence alignment invest in?
 *
 * For each application we vary one resource at a time around the
 * 4-way baseline (vector-integer units, L1 size, branch predictor
 * quality) and report the IPC delta, showing that each application
 * class wants a different machine:
 *
 *   - SW_vmx128 responds to VI units (compute bound),
 *   - BLAST responds to cache (memory bound),
 *   - SSEARCH responds to branch prediction (flush bound).
 *
 * The twelve (application x variant) points are independent, so
 * they run through the parallel sweep engine (BIOARCH_JOBS
 * overrides the worker count); results come back in submission
 * order regardless of which thread simulated what.
 */

#include <cstdio>

#include "core/sweep.hh"
#include "core/suite.hh"

using namespace bioarch;

int
main()
{
    kernels::TraceSpec spec;
    spec.dbSequences = 8;
    core::WorkloadSuite suite(spec);

    const kernels::Workload apps[] = {
        kernels::Workload::Ssearch34,
        kernels::Workload::SwVmx128,
        kernels::Workload::Blast,
    };

    sim::SimConfig base; // 4-way, me1, combined predictor

    sim::SimConfig more_vi = base;
    more_vi.core.units[static_cast<int>(sim::FuClass::Vi)] += 1;
    more_vi.core.units[static_cast<int>(sim::FuClass::VPer)] += 1;

    sim::SimConfig more_cache = base;
    more_cache.memory.dl1.sizeBytes *= 4;

    sim::SimConfig perfect = base;
    perfect.bpred.kind = sim::PredictorKind::Perfect;

    const sim::SimConfig variants[] = {base, more_vi, more_cache,
                                       perfect};

    std::vector<core::SweepPoint> points;
    for (const kernels::Workload w : apps)
        for (const sim::SimConfig &cfg : variants)
            points.push_back({w, cfg, {}, {}});

    core::SweepRunner runner(suite);
    const core::SweepResult sweep = runner.run(points);

    std::printf("IPC deltas vs the 4-way baseline "
                "(one resource doubled at a time)\n\n");
    std::printf("%-11s %8s %9s %9s %9s\n", "app", "baseline",
                "+VI unit", "4x L1", "perfectBP");

    std::size_t i = 0;
    for (const kernels::Workload w : apps) {
        const double ipc0 = sweep.stats(i++).ipc();
        auto delta = [&] {
            return 100.0 * (sweep.stats(i++).ipc() / ipc0 - 1.0);
        };
        const double d_vi = delta();
        const double d_cache = delta();
        const double d_bp = delta();
        std::printf("%-11s %8.2f %+8.1f%% %+8.1f%% %+8.1f%%\n",
                    std::string(kernels::workloadName(w)).c_str(),
                    ipc0, d_vi, d_cache, d_bp);
    }

    std::printf("\nReading: each application class rewards a "
                "different investment —\n"
                "vector units for the SIMD kernels, cache for "
                "BLAST, and branch\nprediction for the scalar "
                "dynamic-programming codes.\n");
    std::printf("\n(sweep: %zu points on %u threads, %.0f ms wall, "
                "%.1f points/s)\n",
                sweep.summary.points, sweep.summary.jobs,
                sweep.summary.wallMs, sweep.summary.pointsPerSec());
    return 0;
}
