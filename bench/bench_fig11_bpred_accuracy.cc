/**
 * @file
 * Fig. 11: branch prediction accuracy versus predictor table size
 * (16 to 32K entries) for bimodal, gshare, and combined ("GP")
 * predictors, per application.
 *
 * This harness replays only the conditional-branch stream of each
 * trace through the direction predictors (the full pipeline is not
 * needed to measure accuracy).
 */

#include "bench_common.hh"
#include "sim/bpred.hh"

using namespace bioarch;

namespace
{

double
accuracy(const trace::Trace &tr, sim::PredictorKind kind,
         int entries)
{
    sim::BranchPredictorConfig cfg;
    cfg.kind = kind;
    cfg.tableEntries = entries;
    auto p = sim::makePredictor(cfg);
    for (const isa::Inst &inst : tr)
        if (inst.isBranch() && inst.conditional)
            p->predictAndUpdate(inst.pc, inst.taken);
    return p->accuracy();
}

} // namespace

int
main()
{
    bench::banner(
        "Fig. 11 - prediction accuracy vs predictor size",
        "all three predictors plateau well below 100% (~85-93%) "
        "by ~512 entries: the mispredictions are data-dependent, "
        "not capacity");

    const int sizes[] = {16,  32,  64,   128,  256,  512,
                         1024, 2048, 4096, 8192, 16384, 32768};

    // Fig. 11 shows SSEARCH34, SW_vmx128, FASTA34 and BLAST.
    for (const kernels::Workload w :
         {kernels::Workload::Ssearch34, kernels::Workload::SwVmx128,
          kernels::Workload::Fasta34, kernels::Workload::Blast}) {
        const trace::Trace &tr = bench::suite().trace(w);
        core::printHeading(
            std::cout,
            std::string(kernels::workloadName(w))
                + " - prediction rate [%]");
        core::Table t({"entries", "BIMODAL", "GSHARE", "GP"});
        for (const int size : sizes) {
            t.row()
                .add(size)
                .add(100.0
                         * accuracy(tr,
                                    sim::PredictorKind::Bimodal,
                                    size),
                     2)
                .add(100.0
                         * accuracy(tr,
                                    sim::PredictorKind::Gshare,
                                    size),
                     2)
                .add(100.0
                         * accuracy(tr,
                                    sim::PredictorKind::Combined,
                                    size),
                     2);
        }
        t.print(std::cout);
    }
    return 0;
}
