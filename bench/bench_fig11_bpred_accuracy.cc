/**
 * @file
 * Fig. 11: branch prediction accuracy versus predictor table size
 * (16 to 32K entries) for bimodal, gshare, and combined ("GP")
 * predictors, per application.
 *
 * This harness replays only the conditional-branch stream of each
 * trace through the direction predictors (the full pipeline is not
 * needed to measure accuracy). The (workload, size, kind) cells are
 * independent replays of immutable traces, so they fan out over
 * the same work-stealing pool the simulation sweeps use; each cell
 * writes its own slot, keeping the output deterministic.
 */

#include "bench_common.hh"
#include "sim/bpred.hh"

using namespace bioarch;

namespace
{

double
accuracy(const trace::Trace &tr, sim::PredictorKind kind,
         int entries)
{
    sim::BranchPredictorConfig cfg;
    cfg.kind = kind;
    cfg.tableEntries = entries;
    auto p = sim::makePredictor(cfg);
    for (const isa::Inst &inst : tr)
        if (inst.isBranch() && inst.conditional)
            p->predictAndUpdate(inst.pc, inst.taken);
    return p->accuracy();
}

} // namespace

int
main()
{
    bench::banner(
        "Fig. 11 - prediction accuracy vs predictor size",
        "all three predictors plateau well below 100% (~85-93%) "
        "by ~512 entries: the mispredictions are data-dependent, "
        "not capacity");

    const int sizes[] = {16,  32,  64,   128,  256,  512,
                         1024, 2048, 4096, 8192, 16384, 32768};
    const sim::PredictorKind kinds[] = {
        sim::PredictorKind::Bimodal, sim::PredictorKind::Gshare,
        sim::PredictorKind::Combined};

    // Fig. 11 shows SSEARCH34, SW_vmx128, FASTA34 and BLAST.
    const kernels::Workload apps[] = {
        kernels::Workload::Ssearch34, kernels::Workload::SwVmx128,
        kernels::Workload::Fasta34, kernels::Workload::Blast};

    const std::size_t per_app = std::size(sizes) * std::size(kinds);
    std::vector<double> acc(std::size(apps) * per_app);

    core::ThreadPool pool(bench::jobs());
    pool.parallelFor(acc.size(), [&](std::size_t cell) {
        const std::size_t a = cell / per_app;
        const std::size_t s = (cell % per_app) / std::size(kinds);
        const std::size_t k = cell % std::size(kinds);
        acc[cell] = accuracy(bench::suite().trace(apps[a]),
                             kinds[k], sizes[s]);
    });

    std::size_t cell = 0;
    for (const kernels::Workload w : apps) {
        core::printHeading(
            std::cout,
            std::string(kernels::workloadName(w))
                + " - prediction rate [%]");
        core::Table t({"entries", "BIMODAL", "GSHARE", "GP"});
        for (const int size : sizes) {
            auto &row = t.row().add(size);
            for (std::size_t k = 0; k < std::size(kinds); ++k)
                row.add(100.0 * acc[cell++], 2);
        }
        t.print(std::cout);
    }
    std::cout << "\n# jobs: " << pool.size() << "\n";
    return 0;
}
