/**
 * @file
 * Ablation: lane-count scaling of the SIMD Smith-Waterman kernel
 * (4/8/16/32 lanes). Extends Fig. 8's 128-vs-256 comparison: trace
 * size shrinks sub-linearly with lanes while the dependency-chain
 * and permute overheads grow, so simulated speedup saturates.
 */

#include "bench_common.hh"
#include "kernels/sw_vmx_traced.hh"

using namespace bioarch;

int
main()
{
    bench::banner(
        "Ablation - SIMD lane scaling (4/8/16/32 lanes)",
        "extends Fig. 8: doubling register width never doubles "
        "performance; the dependency chains and per-granule "
        "permute work eat the gains");

    const kernels::TraceInput &input = bench::suite().input();
    const sim::SimConfig cfg; // 4-way, me1

    struct Row
    {
        int lanes;
        kernels::TracedRun run;
    };
    std::vector<Row> rows;
    rows.push_back({4, kernels::traceSwVmx<4>(input)});
    rows.push_back({8, kernels::traceSwVmx<8>(input)});
    rows.push_back({16, kernels::traceSwVmx<16>(input)});
    rows.push_back({32, kernels::traceSwVmx<32>(input)});

    const double base_cycles = static_cast<double>(
        core::simulate(rows[1].run.trace, cfg).cycles);

    core::Table t({"lanes", "bits", "instructions", "vs 8 lanes",
                   "cycles", "speedup vs 8 lanes", "IPC"});
    for (const Row &row : rows) {
        const sim::SimStats stats =
            core::simulate(row.run.trace, cfg);
        t.row()
            .add(row.lanes)
            .add(row.lanes * 16)
            .add(static_cast<std::uint64_t>(row.run.trace.size()))
            .add(static_cast<double>(row.run.trace.size())
                     / static_cast<double>(rows[1].run.trace.size()),
                 3)
            .add(stats.cycles)
            .add(base_cycles / static_cast<double>(stats.cycles), 3)
            .add(stats.ipc(), 2);
    }
    t.print(std::cout);
    return 0;
}
