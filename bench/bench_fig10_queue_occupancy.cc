/**
 * @file
 * Fig. 10: issue-queue utilization and in-flight instruction
 * histograms for FASTA34 and SW_vmx128 (4-way, me1).
 */

#include "bench_common.hh"

using namespace bioarch;

namespace
{

/** Print an occupancy histogram, bucketing the tail. */
void
printHistogram(const std::vector<std::uint64_t> &h,
               const std::string &name, int step)
{
    core::Table t({"entries in " + name, "cycles"});
    for (std::size_t lo = 0; lo < h.size();
         lo += static_cast<std::size_t>(step)) {
        std::uint64_t cycles = 0;
        const std::size_t hi = std::min(
            lo + static_cast<std::size_t>(step), h.size());
        for (std::size_t n = lo; n < hi; ++n)
            cycles += h[n];
        if (cycles == 0)
            continue;
        t.row()
            .add(step == 1 ? std::to_string(lo)
                           : std::to_string(lo) + "-"
                                 + std::to_string(hi - 1))
            .add(cycles);
    }
    t.print(std::cout);
    std::cout << "mean occupancy: "
              << sim::SimStats::meanOccupancy(h) << "\n";
}

} // namespace

int
main()
{
    bench::banner(
        "Fig. 10 - issue queue / in-flight utilization "
        "(4-way, me1)",
        "FASTA's queues are mostly empty (flush-limited ILP); "
        "SW_vmx128 keeps the VI queue busy and many instructions "
        "in flight");

    const sim::SimConfig cfg; // 4-way, me1
    for (const kernels::Workload w :
         {kernels::Workload::Fasta34, kernels::Workload::SwVmx128}) {
        const sim::SimStats stats =
            core::simulate(bench::suite().trace(w), cfg);

        core::printHeading(
            std::cout,
            "ISSUE QUEUES - "
                + std::string(kernels::workloadName(w)));
        for (const sim::FuClass cls :
             {sim::FuClass::Fix, sim::FuClass::LdSt,
              sim::FuClass::Br, sim::FuClass::Vi,
              sim::FuClass::VPer}) {
            std::cout << "\n[" << sim::fuClassName(cls)
                      << " queue]\n";
            printHistogram(
                stats.queueOccupancy[static_cast<std::size_t>(
                    cls)],
                std::string(sim::fuClassName(cls)) + "-Q", 2);
        }

        core::printHeading(
            std::cout,
            "IN-FLIGHT / RETIRE QUEUE - "
                + std::string(kernels::workloadName(w)));
        std::cout << "[in-flight instructions]\n";
        printHistogram(stats.inflightOccupancy, "in-flight", 16);
        std::cout << "\n[retire queue]\n";
        printHistogram(stats.retireQueueOccupancy, "retire-Q", 16);
    }
    return 0;
}
