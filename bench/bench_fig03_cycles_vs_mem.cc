/**
 * @file
 * Fig. 3: execution time (CPU cycles) per application across the
 * memory configurations (Table V) and core widths (Table IV).
 */

#include "bench_common.hh"

using namespace bioarch;

int
main()
{
    bench::banner(
        "Fig. 3 - cycles vs memory configuration x core width",
        "only BLAST (and mildly the SIMD codes) improves with "
        "bigger memories; ~8% speedup from 4-way to 8-way; "
        "SSEARCH/BLAST flat beyond 8-way");

    std::vector<core::SweepPoint> points;
    for (const kernels::Workload w : kernels::allWorkloads)
        for (const sim::MemoryConfig &mem : core::memorySweep())
            for (const sim::CoreConfig &core_cfg :
                 core::coreSweep()) {
                core::SweepPoint p;
                p.workload = w;
                p.config.core = core_cfg;
                p.config.memory = mem;
                p.label = mem.name + "/" + core_cfg.name;
                points.push_back(std::move(p));
            }
    const core::SweepResult sweep = bench::runSweep(points);

    std::size_t i = 0;
    for (const kernels::Workload w : kernels::allWorkloads) {
        core::printHeading(
            std::cout, std::string(kernels::workloadName(w)));
        core::Table t({"memory", "4-way", "8-way", "16-way"});
        for (const sim::MemoryConfig &mem : core::memorySweep()) {
            auto &row = t.row().add(mem.name);
            for (std::size_t c = 0; c < core::coreSweep().size();
                 ++c)
                row.add(sweep.stats(i++).cycles);
        }
        t.print(std::cout);
    }

    bench::printSweepJson("fig03_cycles_vs_mem", sweep);
    return 0;
}
