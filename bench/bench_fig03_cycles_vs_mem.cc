/**
 * @file
 * Fig. 3: execution time (CPU cycles) per application across the
 * memory configurations (Table V) and core widths (Table IV).
 */

#include "bench_common.hh"

using namespace bioarch;

int
main()
{
    bench::banner(
        "Fig. 3 - cycles vs memory configuration x core width",
        "only BLAST (and mildly the SIMD codes) improves with "
        "bigger memories; ~8% speedup from 4-way to 8-way; "
        "SSEARCH/BLAST flat beyond 8-way");

    for (const kernels::Workload w : kernels::allWorkloads) {
        core::printHeading(
            std::cout, std::string(kernels::workloadName(w)));
        core::Table t({"memory", "4-way", "8-way", "16-way"});
        for (const sim::MemoryConfig &mem : core::memorySweep()) {
            auto &row = t.row().add(mem.name);
            for (const sim::CoreConfig &core_cfg :
                 core::coreSweep()) {
                sim::SimConfig cfg;
                cfg.core = core_cfg;
                cfg.memory = mem;
                const sim::SimStats stats =
                    core::simulate(bench::suite().trace(w), cfg);
                row.add(stats.cycles);
            }
        }
        t.print(std::cout);
    }
    return 0;
}
