/**
 * @file
 * Ablation: BLAST design choices — the two-hit heuristic and the
 * neighborhood threshold T — and their effect on work done and on
 * the memory behavior DESIGN.md calls out (the lookup structures
 * are what make BLAST memory-bound).
 */

#include "bench_common.hh"

#include "align/blast.hh"
#include "bio/scoring.hh"

using namespace bioarch;

int
main()
{
    bench::banner(
        "Ablation - BLAST two-hit heuristic and threshold T",
        "two-hit suppresses most ungapped extensions; lowering T "
        "grows the neighborhood table (more selectivity, more "
        "memory pressure)");

    const bio::ScoringMatrix &mat = bio::blosum62();
    const bio::GapPenalties gaps;
    const kernels::TraceInput &input = bench::suite().input();

    core::Table t({"T", "two-hit", "table entries", "word hits",
                   "extensions", "gapped", "cells"});
    for (const int threshold : {13, 12, 11, 10}) {
        for (const bool two_hit : {true, false}) {
            align::BlastParams params;
            params.neighborThreshold = threshold;
            params.twoHit = two_hit;
            const align::NeighborhoodIndex index(input.query, mat,
                                                 params);
            std::uint64_t cells = 0;
            std::uint64_t hits = 0;
            std::uint64_t exts = 0;
            std::uint64_t gapped = 0;
            for (const bio::Sequence &s : input.db) {
                const align::BlastScores bs = align::blastScan(
                    index, input.query, s, mat, gaps, params,
                    &cells);
                hits += static_cast<std::uint64_t>(bs.wordHits);
                exts += static_cast<std::uint64_t>(
                    bs.extensionsTried);
                gapped += static_cast<std::uint64_t>(
                    bs.gappedExtensions);
            }
            t.row()
                .add(threshold)
                .add(two_hit ? "yes" : "no")
                .add(static_cast<std::uint64_t>(
                    index.numEntries()))
                .add(hits)
                .add(exts)
                .add(gapped)
                .add(cells);
        }
    }
    t.print(std::cout);
    return 0;
}
