/**
 * @file
 * Throughput/latency harness for the batched query-serving engine
 * (src/serve): replays a deterministic 64-request stream of all
 * five applications against a synthetic SwissProt stand-in and
 * reports requests/sec plus the p50/p95/p99 latency distribution.
 * Ends with the standard JSON footer (bench_common.hh) so archived
 * BENCH_*.json files track the serving-path perf trajectory
 * alongside the simulation sweeps.
 *
 * The stream is replayed through two engines — one on the model
 * kernels, one on the native SIMD backend — in interleaved rounds,
 * so the footer tracks the end-to-end win of the kernel swap
 * (GCUPS and wall-time speedup) alongside absolute throughput.
 *
 * Fleet segments (PR 8) ride the same stream: a replicas {1,2}
 * A/B through the ReplicaRouter (hits must stay bit-identical to
 * the serial engine), a cache cold/hot A/B (pass 2 answered
 * entirely from the sharded LRU, cache_hit_p99_us in the footer),
 * and a three-tenant overload run on a ManualClock whose
 * per-tenant counters must satisfy served + shed +
 * deadline_expired + dropped == offered.
 *
 * The two-phase reporting segment replays the stream score-only
 * and with CIGAR reporting against the reference Zipf database;
 * the ranked hits must be bit-identical (reporting runs strictly
 * after the merge) and the footer's report_overhead_pct is the
 * end-to-end cost of the traceback phase.
 *
 * Knobs: BIOARCH_JOBS (worker threads), BIOARCH_DB_SEQS (database
 * size, default 200 here), BIOARCH_SIMD_BACKEND (native backend
 * selection).
 */

#include <chrono>
#include <cstdlib>
#include <limits>

#include "bench_common.hh"
#include "bio/synthetic.hh"
#include "index/epoch.hh"
#include "index/seed_index.hh"
#include "obs/metrics.hh"
#include "serve/clock.hh"
#include "serve/engine.hh"
#include "serve/loop.hh"
#include "serve/reload.hh"
#include "serve/router.hh"

using namespace bioarch;

namespace
{

int
envInt(const char *name, int fallback)
{
    if (const char *env = std::getenv(name)) {
        const int n = std::atoi(env);
        if (n > 0)
            return n;
    }
    return fallback;
}

} // namespace

int
main()
{
    const int db_seqs = envInt("BIOARCH_DB_SEQS", 200);

    serve::StreamSpec stream;
    stream.requests = 64;

    serve::EngineConfig cfg;
    cfg.jobs = bench::jobs();
    cfg.shards = 4;
    cfg.batch = 8;
    cfg.topK = 10;

    const std::vector<bio::Sequence> pool = bio::makeQuerySet();
    const bio::SequenceDatabase db =
        bio::makeDefaultDatabase(db_seqs);
    const std::vector<serve::Request> requests =
        serve::makeRequestStream(stream, pool);

    std::cout << "# bench_serve_throughput - batched sharded "
                 "query serving\n"
              << "# stream: " << requests.size()
              << " requests (five-application mix) vs "
              << db.size() << " sequences / " << db.totalResidues()
              << " residues (BIOARCH_DB_SEQS to scale)\n"
              << "# backends: model vs "
              << align::backendName(cfg.backend)
              << " (interleaved rounds, per-arm min)\n";

    serve::EngineConfig model_cfg = cfg;
    model_cfg.backend = align::SimdBackend::Model;
    serve::Engine model_engine(db, model_cfg);
    serve::Engine engine(db, cfg);

    constexpr int rounds = 3;
    double model_ms = std::numeric_limits<double>::infinity();
    double native_ms = std::numeric_limits<double>::infinity();
    std::uint64_t model_cells = 0;
    serve::StreamReport report;
    for (int r = 0; r < rounds; ++r) {
        const serve::StreamReport mr =
            model_engine.serveStream(requests);
        model_ms = std::min(model_ms, mr.wallMs);
        model_cells = mr.totalCells;
        serve::StreamReport nr = engine.serveStream(requests);
        if (nr.wallMs < native_ms) {
            native_ms = nr.wallMs;
            report = std::move(nr);
        }
    }
    const serve::LatencySummary lat = report.latency.summary();

    // Online-serving segment: push the whole stream through the
    // ServeLoop at once against a queue bound of half the stream,
    // so admission control sheds a deterministic 32 of 64 and the
    // pumped half leaves real queue-wait samples in
    // serve_queue_wait_us.
    serve::LoopConfig lcfg;
    lcfg.queueCapacity = requests.size() / 2;
    serve::ServeLoop loop(engine, lcfg);
    for (const serve::Request &r : requests)
        (void)loop.submit(r);
    loop.pumpAll();
    const std::uint64_t shed_count = engine.metrics().counterValue(
        "loop_shed_queue_full_total");
    const double queue_wait_p99_ms =
        engine.metrics()
            .histogram("serve_queue_wait_us")
            .summary()
            .p99
        / 1000.0;

    // Indexed-serving segment: a BLAST-only stream at the indexed
    // tier's reference configuration (Zipf-length database,
    // neighborhood threshold T=16), replayed through a full-scan
    // engine and a seed-indexed engine in interleaved rounds. The
    // ranked hits are bit-identical by construction (asserted by
    // tests/index_test.cc); here we track the end-to-end speedup
    // and the scanned-residue fraction. BIOARCH_INDEX_DB_SEQS
    // scales the segment's database independently of the main
    // stream's.
    const int index_db_seqs = envInt("BIOARCH_INDEX_DB_SEQS", 2000);
    const bio::SequenceDatabase zdb =
        bio::makeZipfDatabase(index_db_seqs);
    serve::StreamSpec blast_stream;
    blast_stream.requests = 32;
    blast_stream.kinds = {kernels::Workload::Blast};
    const std::vector<serve::Request> blast_requests =
        serve::makeRequestStream(blast_stream, pool);
    const index::SeedIndex seed_index =
        index::SeedIndex::build(zdb);
    serve::EngineConfig iful_cfg = cfg;
    iful_cfg.blast.neighborThreshold = 16;
    serve::EngineConfig iidx_cfg = iful_cfg;
    iidx_cfg.seedIndex = &seed_index;
    serve::Engine iful_engine(zdb, iful_cfg);
    serve::Engine iidx_engine(zdb, iidx_cfg);
    double iful_ms = std::numeric_limits<double>::infinity();
    double iidx_ms = std::numeric_limits<double>::infinity();
    std::uint64_t iful_residues = 0;
    std::uint64_t iidx_residues = 0;
    for (int r = 0; r < rounds; ++r) {
        const serve::StreamReport fr =
            iful_engine.serveStream(blast_requests);
        iful_ms = std::min(iful_ms, fr.wallMs);
        const serve::StreamReport ir =
            iidx_engine.serveStream(blast_requests);
        iidx_ms = std::min(iidx_ms, ir.wallMs);
        if (r == 0)
            for (std::size_t i = 0; i < blast_requests.size();
                 ++i) {
                iful_residues += fr.responses[i].residuesScanned;
                iidx_residues += ir.responses[i].residuesScanned;
            }
    }
    const double indexed_speedup = iful_ms / iidx_ms;
    const double indexed_residue_fraction = iful_residues == 0
        ? 0.0
        : static_cast<double>(iidx_residues)
            / static_cast<double>(iful_residues);

    // Hot-reload identity segment: push the BLAST stream through a
    // ServeLoop fronting a ReloadableEngine and swap in a second
    // database epoch halfway through the submissions. The loop's
    // books must still balance afterwards — every offered request
    // ends in exactly one terminal state — and the published epoch
    // must be the new one.
    serve::ReloadableEngine rengine(
        index::makeEpoch(zdb, /*build_index=*/true, 1), iidx_cfg);
    serve::LoopConfig rlcfg;
    rlcfg.queueCapacity = blast_requests.size();
    serve::ServeLoop rloop(rengine, rlcfg);
    const bio::SequenceDatabase reload_db =
        bio::makeZipfDatabase(index_db_seqs, 0xDBDBDBDC);
    for (std::size_t i = 0; i < blast_requests.size(); ++i) {
        if (i == blast_requests.size() / 2)
            rengine.reload(index::makeEpoch(
                reload_db, /*build_index=*/true, 2));
        (void)rloop.submit(blast_requests[i]);
    }
    rloop.pumpAll();
    const obs::Registry &rm = rengine.metrics();
    const std::uint64_t r_offered =
        rm.counterValue("loop_offered_total");
    const std::uint64_t r_settled =
        rm.counterValue("loop_served_total")
        + rm.counterValue("loop_shed_queue_full_total")
        + rm.counterValue("loop_shed_deadline_total")
        + rm.counterValue("loop_shed_shutdown_total")
        + rm.counterValue("loop_deadline_expired_total")
        + rm.counterValue("loop_dropped_total");
    const bool hot_reload_ok = r_offered != 0
        && r_settled == r_offered
        && rengine.epochNumber() == 2
        && rm.gaugeValue("db_epoch") == 2.0;
    if (!hot_reload_ok)
        std::cerr << "FAIL: hot-reload identity (offered "
                  << r_offered << ", settled " << r_settled
                  << ", epoch " << rengine.epochNumber() << ")\n";

    // Fleet segments (PR 8). All three reuse the main stream and
    // database.
    //
    // (a) Replica A/B: the same stream through a 1-replica and a
    // 2-replica router, caches off. The ranked hits must be
    // bit-identical (the router only changes *where* a scan runs);
    // the wall-time ratio tracks scatter-gather overhead — note
    // that on a single-core runner 2 replicas cannot beat 1.
    const auto wall_ms_of = [](const auto &fn) {
        const auto t0 = std::chrono::steady_clock::now();
        fn();
        return std::chrono::duration<double, std::milli>(
                   std::chrono::steady_clock::now() - t0)
            .count();
    };
    const auto same_hits = [](const std::vector<serve::Response> &a,
                              const std::vector<serve::Response> &b) {
        if (a.size() != b.size())
            return false;
        for (std::size_t i = 0; i < a.size(); ++i) {
            if (a[i].hits.size() != b[i].hits.size())
                return false;
            for (std::size_t h = 0; h < a[i].hits.size(); ++h) {
                const align::SearchHit &x = a[i].hits[h];
                const align::SearchHit &y = b[i].hits[h];
                if (x.dbIndex != y.dbIndex || x.score != y.score
                    || x.bitScore != y.bitScore
                    || x.evalue != y.evalue)
                    return false;
            }
        }
        return true;
    };

    serve::RouterConfig r1cfg;
    r1cfg.replicas = 1;
    r1cfg.engine = cfg;
    serve::RouterConfig r2cfg = r1cfg;
    r2cfg.replicas = 2;
    serve::ReplicaRouter router1(index::makeEpoch(db, false, 1),
                                 r1cfg);
    serve::ReplicaRouter router2(index::makeEpoch(db, false, 1),
                                 r2cfg);
    double replicas1_ms = std::numeric_limits<double>::infinity();
    double replicas2_ms = std::numeric_limits<double>::infinity();
    std::vector<serve::Response> r1_out;
    std::vector<serve::Response> r2_out;
    for (int r = 0; r < rounds; ++r) {
        replicas1_ms = std::min(replicas1_ms, wall_ms_of([&] {
            r1_out = router1.serveBatch(requests, {});
        }));
        replicas2_ms = std::min(replicas2_ms, wall_ms_of([&] {
            r2_out = router2.serveBatch(requests, {});
        }));
    }
    bool fleet_identity_ok = same_hits(r1_out, r2_out)
        && same_hits(r1_out, report.responses);

    // (b) Cache cold/hot A/B: one cached router, same stream
    // twice. Pass 2 is answered entirely from the sharded LRU and
    // must be bit-identical to the cold pass.
    serve::RouterConfig ccfg = r1cfg;
    ccfg.cache.capacityBytes = 16u << 20;
    serve::ReplicaRouter crouter(index::makeEpoch(db, false, 1),
                                 ccfg);
    std::vector<serve::Response> cold_out;
    std::vector<serve::Response> hot_out;
    const double cache_cold_ms = wall_ms_of(
        [&] { cold_out = crouter.serveBatch(requests, {}); });
    const double cache_hot_ms = wall_ms_of(
        [&] { hot_out = crouter.serveBatch(requests, {}); });
    obs::Registry &cm = crouter.metrics();
    const std::uint64_t cache_hits =
        cm.counterValue("serve_cache_hits_total");
    const double cache_hit_p99_us =
        cm.histogram("serve_cache_hit_us").summary().p99;
    const double cache_speedup = cache_hot_ms <= 0.0
        ? 0.0
        : cache_cold_ms / cache_hot_ms;
    std::size_t hot_from_cache = 0;
    for (const serve::Response &r : hot_out)
        if (r.fromCache)
            ++hot_from_cache;
    fleet_identity_ok = fleet_identity_ok
        && same_hits(cold_out, r1_out) && same_hits(hot_out, cold_out)
        && hot_from_cache == hot_out.size()
        && cache_hits >= hot_out.size();
    if (!fleet_identity_ok)
        std::cerr << "FAIL: fleet identity (replica/cache hits "
                     "diverge from the serial engine)\n";

    // (c) Multi-tenant identity under overload: three tenants on a
    // ManualClock, tenant 0 offering 4x its quota. Every offered
    // request must settle in exactly one per-tenant terminal
    // state.
    serve::ManualClock tclock;
    serve::LoopConfig tcfg;
    tcfg.queueCapacity = 24;
    tcfg.batch = 8;
    tcfg.tenants = {{0, 50.0, 4.0, 3.0},
                    {1, 200.0, 8.0, 1.0},
                    {2, 200.0, 8.0, 1.0}};
    // Fresh engine: the open-loop segment above already billed the
    // default tenant 0 in `engine`'s registry.
    serve::Engine tenant_engine(db, cfg);
    serve::ServeLoop tloop(tenant_engine, tcfg, &tclock);
    std::uint64_t offered_per_tenant[3] = {0, 0, 0};
    for (std::uint64_t i = 0; i < 96; ++i) {
        tclock.set(static_cast<double>(i) * 2500.0); // 400 qps
        serve::Request r = requests[i % requests.size()];
        // Tenant 0 offers 2 of every 4 arrivals = 200 qps against
        // a 50 qps quota; tenants 1-2 stay inside theirs.
        const std::uint32_t tenant = i % 4 < 2 ? 0 : i % 4 - 1;
        r.tenant = tenant;
        ++offered_per_tenant[tenant];
        (void)tloop.submit(r);
        if (i % 8 == 7)
            tloop.pumpOne();
    }
    tloop.stop();
    bool tenant_identity_ok = true;
    const obs::Registry &tm = tenant_engine.metrics();
    for (std::uint32_t tenant = 0; tenant < 3; ++tenant) {
        const std::string label =
            "tenant=\"" + std::to_string(tenant) + "\"";
        const std::uint64_t offered = tm.counterValue(
            "serve_tenant_offered_total", label);
        const std::uint64_t settled =
            tm.counterValue("serve_tenant_served_total", label)
            + tm.counterValue("serve_tenant_shed_total", label)
            + tm.counterValue("serve_tenant_deadline_expired_total",
                              label)
            + tm.counterValue("serve_tenant_dropped_total", label);
        if (offered != offered_per_tenant[tenant]
            || settled != offered) {
            tenant_identity_ok = false;
            std::cerr << "FAIL: tenant " << tenant
                      << " identity (offered " << offered
                      << ", settled " << settled << ")\n";
        }
    }

    // Two-phase reporting A/B (the reference Zipf workload): the
    // same stream score-only and with --report-alignments
    // semantics, in interleaved rounds. Reporting must not perturb
    // the ranked hits — phase 2 runs strictly after the merge — and
    // the wall-time delta is the end-to-end cost of the traceback
    // phase at top-K = 10.
    const bio::SequenceDatabase report_db =
        bio::makeZipfDatabase(db_seqs);
    std::vector<serve::Request> report_requests = requests;
    for (serve::Request &r : report_requests)
        r.reportAlignments = true;
    serve::Engine score_engine(report_db, cfg);
    serve::Engine report_engine(report_db, cfg);
    double score_ms = std::numeric_limits<double>::infinity();
    double report_ms = std::numeric_limits<double>::infinity();
    std::vector<serve::Response> score_out;
    std::vector<serve::Response> report_out;
    for (int r = 0; r < rounds; ++r) {
        score_ms = std::min(score_ms, wall_ms_of([&] {
            score_out = score_engine.serveBatch(requests);
        }));
        report_ms = std::min(report_ms, wall_ms_of([&] {
            report_out =
                report_engine.serveBatch(report_requests);
        }));
    }
    const double report_overhead_pct = score_ms <= 0.0
        ? 0.0
        : 100.0 * (report_ms - score_ms) / score_ms;
    std::uint64_t report_alignments = 0;
    std::uint64_t report_tb_cells = 0;
    for (const serve::Response &r : report_out) {
        report_alignments += r.alignments.size();
        report_tb_cells += r.tracebackCells;
    }
    const bool report_identity_ok =
        same_hits(score_out, report_out)
        && report_alignments > 0;
    if (!report_identity_ok)
        std::cerr << "FAIL: reporting identity (ranked hits "
                     "changed with --report-alignments, or no "
                     "alignments came back)\n";

    core::Table t({"metric", "value"});
    t.row().add("requests").add(
        static_cast<std::uint64_t>(report.responses.size()));
    t.row().add("jobs").add(static_cast<int>(report.jobs));
    t.row().add("shards").add(
        static_cast<std::uint64_t>(report.shards));
    t.row().add("batch size").add(
        static_cast<std::uint64_t>(report.batchSize));
    t.row().add("wall ms").add(report.wallMs, 2);
    t.row().add("requests/sec").add(report.requestsPerSec(), 1);
    t.row().add("p50 latency ms").add(lat.p50Us / 1000.0, 3);
    t.row().add("p95 latency ms").add(lat.p95Us / 1000.0, 3);
    t.row().add("p99 latency ms").add(lat.p99Us / 1000.0, 3);
    t.row().add("scan cpu ms").add(report.cpuMs, 2);
    t.row().add("parallel efficiency").add(
        report.parallelEfficiency(), 2);
    t.row().add("total cells").add(report.totalCells);
    t.row().add("loop shed count").add(shed_count);
    t.row().add("queue wait p99 ms").add(queue_wait_p99_ms, 3);
    t.row().add("indexed speedup").add(indexed_speedup, 2);
    t.row().add("indexed residue frac").add(
        indexed_residue_fraction, 3);
    t.row().add("hot reload ok").add(
        std::string(hot_reload_ok ? "yes" : "NO"));
    t.row().add("replicas=1 wall ms").add(replicas1_ms, 2);
    t.row().add("replicas=2 wall ms").add(replicas2_ms, 2);
    t.row().add("cache cold ms").add(cache_cold_ms, 2);
    t.row().add("cache hot ms").add(cache_hot_ms, 2);
    t.row().add("cache hit p99 us").add(cache_hit_p99_us, 3);
    t.row().add("fleet identity ok").add(
        std::string(fleet_identity_ok ? "yes" : "NO"));
    t.row().add("tenant identity ok").add(
        std::string(tenant_identity_ok ? "yes" : "NO"));
    t.row().add("score-only wall ms").add(score_ms, 2);
    t.row().add("reporting wall ms").add(report_ms, 2);
    t.row().add("report overhead %").add(report_overhead_pct, 1);
    t.row().add("traceback cells").add(report_tb_cells);
    t.row().add("report identity ok").add(
        std::string(report_identity_ok ? "yes" : "NO"));
    t.print(std::cout);

    std::vector<double> point_ms;
    point_ms.reserve(report.responses.size());
    for (const serve::Response &r : report.responses)
        point_ms.push_back(r.latencyUs() / 1000.0);

    // GCUPS compares each arm's own cell accounting against its
    // own best wall time (the model's vector kinds count padded
    // lanes, the native kernel counts logical m*n cells).
    const auto gcups = [](std::uint64_t cells, double ms) {
        return ms <= 0.0
            ? 0.0
            : static_cast<double>(cells) / (ms * 1e6);
    };
    bench::printJsonFooter(
        "bench_serve_throughput", report.jobs,
        report.responses.size(), report.wallMs, report.cpuMs,
        {{"shards", std::to_string(report.shards)},
         {"batch", std::to_string(report.batchSize)},
         {"total_cells", std::to_string(report.totalCells)},
         {"backend",
          "\"" + std::string(align::backendName(cfg.backend))
              + "\""},
         {"model_wall_ms", std::to_string(model_ms)},
         {"native_wall_ms", std::to_string(native_ms)},
         {"gcups_model", std::to_string(gcups(model_cells,
                                              model_ms))},
         {"gcups_native",
          std::to_string(gcups(report.totalCells, native_ms))},
         {"serve_speedup", std::to_string(model_ms / native_ms)},
         {"queue_wait_p99_ms", std::to_string(queue_wait_p99_ms)},
         {"shed_count", std::to_string(shed_count)},
         {"indexed_speedup", std::to_string(indexed_speedup)},
         {"indexed_residue_fraction",
          std::to_string(indexed_residue_fraction)},
         {"hot_reload_ok", hot_reload_ok ? "true" : "false"},
         {"replicas1_ms", std::to_string(replicas1_ms)},
         {"replicas2_ms", std::to_string(replicas2_ms)},
         {"cache_cold_ms", std::to_string(cache_cold_ms)},
         {"cache_hot_ms", std::to_string(cache_hot_ms)},
         {"cache_hit_p99_us", std::to_string(cache_hit_p99_us)},
         {"cache_speedup", std::to_string(cache_speedup)},
         {"fleet_identity_ok",
          fleet_identity_ok ? "true" : "false"},
         {"tenant_identity_ok",
          tenant_identity_ok ? "true" : "false"},
         {"score_only_ms", std::to_string(score_ms)},
         {"report_ms", std::to_string(report_ms)},
         {"report_overhead_pct",
          std::to_string(report_overhead_pct)},
         {"report_alignments",
          std::to_string(report_alignments)},
         {"traceback_cells", std::to_string(report_tb_cells)},
         {"report_identity_ok",
          report_identity_ok ? "true" : "false"}},
        point_ms);
    return hot_reload_ok && fleet_identity_ok && tenant_identity_ok
            && report_identity_ok
        ? 0
        : 1;
}
