/**
 * @file
 * Throughput/latency harness for the batched query-serving engine
 * (src/serve): replays a deterministic 64-request stream of all
 * five applications against a synthetic SwissProt stand-in and
 * reports requests/sec plus the p50/p95/p99 latency distribution.
 * Ends with the standard JSON footer (bench_common.hh) so archived
 * BENCH_*.json files track the serving-path perf trajectory
 * alongside the simulation sweeps.
 *
 * The stream is replayed through two engines — one on the model
 * kernels, one on the native SIMD backend — in interleaved rounds,
 * so the footer tracks the end-to-end win of the kernel swap
 * (GCUPS and wall-time speedup) alongside absolute throughput.
 *
 * Knobs: BIOARCH_JOBS (worker threads), BIOARCH_DB_SEQS (database
 * size, default 200 here), BIOARCH_SIMD_BACKEND (native backend
 * selection).
 */

#include <cstdlib>
#include <limits>

#include "bench_common.hh"
#include "bio/synthetic.hh"
#include "index/epoch.hh"
#include "index/seed_index.hh"
#include "obs/metrics.hh"
#include "serve/engine.hh"
#include "serve/loop.hh"
#include "serve/reload.hh"

using namespace bioarch;

namespace
{

int
envInt(const char *name, int fallback)
{
    if (const char *env = std::getenv(name)) {
        const int n = std::atoi(env);
        if (n > 0)
            return n;
    }
    return fallback;
}

} // namespace

int
main()
{
    const int db_seqs = envInt("BIOARCH_DB_SEQS", 200);

    serve::StreamSpec stream;
    stream.requests = 64;

    serve::EngineConfig cfg;
    cfg.jobs = bench::jobs();
    cfg.shards = 4;
    cfg.batch = 8;
    cfg.topK = 10;

    const std::vector<bio::Sequence> pool = bio::makeQuerySet();
    const bio::SequenceDatabase db =
        bio::makeDefaultDatabase(db_seqs);
    const std::vector<serve::Request> requests =
        serve::makeRequestStream(stream, pool);

    std::cout << "# bench_serve_throughput - batched sharded "
                 "query serving\n"
              << "# stream: " << requests.size()
              << " requests (five-application mix) vs "
              << db.size() << " sequences / " << db.totalResidues()
              << " residues (BIOARCH_DB_SEQS to scale)\n"
              << "# backends: model vs "
              << align::backendName(cfg.backend)
              << " (interleaved rounds, per-arm min)\n";

    serve::EngineConfig model_cfg = cfg;
    model_cfg.backend = align::SimdBackend::Model;
    serve::Engine model_engine(db, model_cfg);
    serve::Engine engine(db, cfg);

    constexpr int rounds = 3;
    double model_ms = std::numeric_limits<double>::infinity();
    double native_ms = std::numeric_limits<double>::infinity();
    std::uint64_t model_cells = 0;
    serve::StreamReport report;
    for (int r = 0; r < rounds; ++r) {
        const serve::StreamReport mr =
            model_engine.serveStream(requests);
        model_ms = std::min(model_ms, mr.wallMs);
        model_cells = mr.totalCells;
        serve::StreamReport nr = engine.serveStream(requests);
        if (nr.wallMs < native_ms) {
            native_ms = nr.wallMs;
            report = std::move(nr);
        }
    }
    const serve::LatencySummary lat = report.latency.summary();

    // Online-serving segment: push the whole stream through the
    // ServeLoop at once against a queue bound of half the stream,
    // so admission control sheds a deterministic 32 of 64 and the
    // pumped half leaves real queue-wait samples in
    // serve_queue_wait_us.
    serve::LoopConfig lcfg;
    lcfg.queueCapacity = requests.size() / 2;
    serve::ServeLoop loop(engine, lcfg);
    for (const serve::Request &r : requests)
        (void)loop.submit(r);
    loop.pumpAll();
    const std::uint64_t shed_count = engine.metrics().counterValue(
        "loop_shed_queue_full_total");
    const double queue_wait_p99_ms =
        engine.metrics()
            .histogram("serve_queue_wait_us")
            .summary()
            .p99
        / 1000.0;

    // Indexed-serving segment: a BLAST-only stream at the indexed
    // tier's reference configuration (Zipf-length database,
    // neighborhood threshold T=16), replayed through a full-scan
    // engine and a seed-indexed engine in interleaved rounds. The
    // ranked hits are bit-identical by construction (asserted by
    // tests/index_test.cc); here we track the end-to-end speedup
    // and the scanned-residue fraction. BIOARCH_INDEX_DB_SEQS
    // scales the segment's database independently of the main
    // stream's.
    const int index_db_seqs = envInt("BIOARCH_INDEX_DB_SEQS", 2000);
    const bio::SequenceDatabase zdb =
        bio::makeZipfDatabase(index_db_seqs);
    serve::StreamSpec blast_stream;
    blast_stream.requests = 32;
    blast_stream.kinds = {kernels::Workload::Blast};
    const std::vector<serve::Request> blast_requests =
        serve::makeRequestStream(blast_stream, pool);
    const index::SeedIndex seed_index =
        index::SeedIndex::build(zdb);
    serve::EngineConfig iful_cfg = cfg;
    iful_cfg.blast.neighborThreshold = 16;
    serve::EngineConfig iidx_cfg = iful_cfg;
    iidx_cfg.seedIndex = &seed_index;
    serve::Engine iful_engine(zdb, iful_cfg);
    serve::Engine iidx_engine(zdb, iidx_cfg);
    double iful_ms = std::numeric_limits<double>::infinity();
    double iidx_ms = std::numeric_limits<double>::infinity();
    std::uint64_t iful_residues = 0;
    std::uint64_t iidx_residues = 0;
    for (int r = 0; r < rounds; ++r) {
        const serve::StreamReport fr =
            iful_engine.serveStream(blast_requests);
        iful_ms = std::min(iful_ms, fr.wallMs);
        const serve::StreamReport ir =
            iidx_engine.serveStream(blast_requests);
        iidx_ms = std::min(iidx_ms, ir.wallMs);
        if (r == 0)
            for (std::size_t i = 0; i < blast_requests.size();
                 ++i) {
                iful_residues += fr.responses[i].residuesScanned;
                iidx_residues += ir.responses[i].residuesScanned;
            }
    }
    const double indexed_speedup = iful_ms / iidx_ms;
    const double indexed_residue_fraction = iful_residues == 0
        ? 0.0
        : static_cast<double>(iidx_residues)
            / static_cast<double>(iful_residues);

    // Hot-reload identity segment: push the BLAST stream through a
    // ServeLoop fronting a ReloadableEngine and swap in a second
    // database epoch halfway through the submissions. The loop's
    // books must still balance afterwards — every offered request
    // ends in exactly one terminal state — and the published epoch
    // must be the new one.
    serve::ReloadableEngine rengine(
        index::makeEpoch(zdb, /*build_index=*/true, 1), iidx_cfg);
    serve::LoopConfig rlcfg;
    rlcfg.queueCapacity = blast_requests.size();
    serve::ServeLoop rloop(rengine, rlcfg);
    const bio::SequenceDatabase reload_db =
        bio::makeZipfDatabase(index_db_seqs, 0xDBDBDBDC);
    for (std::size_t i = 0; i < blast_requests.size(); ++i) {
        if (i == blast_requests.size() / 2)
            rengine.reload(index::makeEpoch(
                reload_db, /*build_index=*/true, 2));
        (void)rloop.submit(blast_requests[i]);
    }
    rloop.pumpAll();
    const obs::Registry &rm = rengine.metrics();
    const std::uint64_t r_offered =
        rm.counterValue("loop_offered_total");
    const std::uint64_t r_settled =
        rm.counterValue("loop_served_total")
        + rm.counterValue("loop_shed_queue_full_total")
        + rm.counterValue("loop_shed_deadline_total")
        + rm.counterValue("loop_shed_shutdown_total")
        + rm.counterValue("loop_deadline_expired_total")
        + rm.counterValue("loop_dropped_total");
    const bool hot_reload_ok = r_offered != 0
        && r_settled == r_offered
        && rengine.epochNumber() == 2
        && rm.gaugeValue("db_epoch") == 2.0;
    if (!hot_reload_ok)
        std::cerr << "FAIL: hot-reload identity (offered "
                  << r_offered << ", settled " << r_settled
                  << ", epoch " << rengine.epochNumber() << ")\n";

    core::Table t({"metric", "value"});
    t.row().add("requests").add(
        static_cast<std::uint64_t>(report.responses.size()));
    t.row().add("jobs").add(static_cast<int>(report.jobs));
    t.row().add("shards").add(
        static_cast<std::uint64_t>(report.shards));
    t.row().add("batch size").add(
        static_cast<std::uint64_t>(report.batchSize));
    t.row().add("wall ms").add(report.wallMs, 2);
    t.row().add("requests/sec").add(report.requestsPerSec(), 1);
    t.row().add("p50 latency ms").add(lat.p50Us / 1000.0, 3);
    t.row().add("p95 latency ms").add(lat.p95Us / 1000.0, 3);
    t.row().add("p99 latency ms").add(lat.p99Us / 1000.0, 3);
    t.row().add("scan cpu ms").add(report.cpuMs, 2);
    t.row().add("parallel efficiency").add(
        report.parallelEfficiency(), 2);
    t.row().add("total cells").add(report.totalCells);
    t.row().add("loop shed count").add(shed_count);
    t.row().add("queue wait p99 ms").add(queue_wait_p99_ms, 3);
    t.row().add("indexed speedup").add(indexed_speedup, 2);
    t.row().add("indexed residue frac").add(
        indexed_residue_fraction, 3);
    t.row().add("hot reload ok").add(
        std::string(hot_reload_ok ? "yes" : "NO"));
    t.print(std::cout);

    std::vector<double> point_ms;
    point_ms.reserve(report.responses.size());
    for (const serve::Response &r : report.responses)
        point_ms.push_back(r.latencyUs() / 1000.0);

    // GCUPS compares each arm's own cell accounting against its
    // own best wall time (the model's vector kinds count padded
    // lanes, the native kernel counts logical m*n cells).
    const auto gcups = [](std::uint64_t cells, double ms) {
        return ms <= 0.0
            ? 0.0
            : static_cast<double>(cells) / (ms * 1e6);
    };
    bench::printJsonFooter(
        "bench_serve_throughput", report.jobs,
        report.responses.size(), report.wallMs, report.cpuMs,
        {{"shards", std::to_string(report.shards)},
         {"batch", std::to_string(report.batchSize)},
         {"total_cells", std::to_string(report.totalCells)},
         {"backend",
          "\"" + std::string(align::backendName(cfg.backend))
              + "\""},
         {"model_wall_ms", std::to_string(model_ms)},
         {"native_wall_ms", std::to_string(native_ms)},
         {"gcups_model", std::to_string(gcups(model_cells,
                                              model_ms))},
         {"gcups_native",
          std::to_string(gcups(report.totalCells, native_ms))},
         {"serve_speedup", std::to_string(model_ms / native_ms)},
         {"queue_wait_p99_ms", std::to_string(queue_wait_p99_ms)},
         {"shed_count", std::to_string(shed_count)},
         {"indexed_speedup", std::to_string(indexed_speedup)},
         {"indexed_residue_fraction",
          std::to_string(indexed_residue_fraction)},
         {"hot_reload_ok", hot_reload_ok ? "true" : "false"}},
        point_ms);
    return hot_reload_ok ? 0 : 1;
}
