/**
 * @file
 * Fig. 5: DL1 miss rate and IPC versus L1 cache size (1K-2M, L2
 * fixed at 2M, 4-way core).
 */

#include "bench_common.hh"

using namespace bioarch;

int
main()
{
    bench::banner(
        "Fig. 5 - DL1 miss rate and IPC vs cache size",
        "all apps but SSEARCH need >= 4K; BLAST worst at every "
        "size, ~4% misses even at 32K; SIMD codes gain >2x "
        "growing past 8K");

    const std::int64_t sizes_kb[] = {1,  2,  4,   8,   16,  32,
                                     64, 128, 256, 512, 1024, 2048};

    std::vector<core::SweepPoint> points;
    for (const std::int64_t kb : sizes_kb)
        for (const kernels::Workload w : kernels::allWorkloads) {
            core::SweepPoint p;
            p.workload = w;
            p.config.memory = sim::memoryMe2(); // 2M L2 (paper)
            p.config.memory.dl1.sizeBytes = kb * 1024;
            p.config.memory.il1.sizeBytes = kb * 1024;
            p.label = std::to_string(kb) + "K";
            points.push_back(std::move(p));
        }
    const core::SweepResult sweep = bench::runSweep(points);

    core::Table miss({"size", "SSEARCH34", "SW_vmx128", "SW_vmx256",
                      "FASTA34", "BLAST"});
    core::Table ipc = miss;

    std::size_t i = 0;
    for (const std::int64_t kb : sizes_kb) {
        auto &rm = miss.row().add(std::to_string(kb) + "K");
        auto &ri = ipc.row().add(std::to_string(kb) + "K");
        for (int w = 0; w < kernels::numWorkloads; ++w) {
            const sim::SimStats &stats = sweep.stats(i++);
            rm.add(100.0 * stats.dl1MissRate(), 2);
            ri.add(stats.ipc(), 3);
        }
    }

    core::printHeading(std::cout, "(a) DL1 miss rate [%]");
    miss.print(std::cout);
    core::printHeading(std::cout, "(b) IPC");
    ipc.print(std::cout);

    bench::printSweepJson("fig05_cache_size", sweep);
    return 0;
}
