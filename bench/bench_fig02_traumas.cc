/**
 * @file
 * Fig. 2: stall-cycle (trauma) histograms on the 4-way, 32K/32K/1M
 * configuration with the real branch predictor.
 */

#include "bench_common.hh"
#include "sim/trauma.hh"

using namespace bioarch;

int
main()
{
    bench::banner(
        "Fig. 2 - trauma histograms (4-way, me1, real BP)",
        "BLAST: rg_fix > mm_dl2 > if_pred > mm_dl1; FASTA similar; "
        "SSEARCH: if_pred dominant; SIMD: rg_vi and rg_vper");

    sim::SimConfig cfg; // 4-way, me1, combined predictor

    for (const kernels::Workload w : kernels::allWorkloads) {
        const sim::SimStats stats =
            core::simulate(bench::suite().trace(w), cfg);

        core::printHeading(
            std::cout,
            "STALL CYCLES in "
                + std::string(kernels::workloadName(w))
                + "  (cycles " + std::to_string(stats.cycles)
                + ", IPC "
                + std::to_string(stats.ipc()).substr(0, 4) + ")");

        core::Table t({"trauma", "cycles", "% of trauma"});
        const std::uint64_t total = stats.traumas.total();
        for (int i = 0; i < sim::numTraumas; ++i) {
            const auto tr = static_cast<sim::Trauma>(i);
            const std::uint64_t c = stats.traumas.get(tr);
            if (c == 0)
                continue; // the paper's histograms are sparse too
            t.row()
                .add(std::string(sim::traumaName(tr)))
                .add(c)
                .add(total ? 100.0 * static_cast<double>(c)
                               / static_cast<double>(total)
                           : 0.0,
                     1);
        }
        t.print(std::cout);
    }
    return 0;
}
