/**
 * @file
 * Shared plumbing for the figure/table regeneration harnesses.
 *
 * Every harness prints the rows/series of one table or figure from
 * the paper's evaluation section, computed from freshly generated
 * traces on the synthetic working set (see DESIGN.md for the
 * scaling notes; set BIOARCH_DB_SEQS to enlarge the database).
 */

#ifndef BIOARCH_BENCH_COMMON_HH
#define BIOARCH_BENCH_COMMON_HH

#include <iostream>
#include <sstream>
#include <vector>

#include "core/report.hh"
#include "core/suite.hh"
#include "core/sweep.hh"

namespace bioarch::bench
{

/** The per-process workload suite (traces generated lazily). */
inline core::WorkloadSuite &
suite()
{
    static core::WorkloadSuite s;
    return s;
}

/** Worker count for the harnesses (BIOARCH_JOBS overrides). */
inline unsigned
jobs()
{
    return core::ThreadPool::defaultJobs();
}

/**
 * Fan the harness's simulation points out across jobs() threads.
 * Results come back in submission order, bit-for-bit identical to
 * simulating serially, so callers index them with the same loop
 * nest that built the points.
 */
inline core::SweepResult
runSweep(const std::vector<core::SweepPoint> &points)
{
    return core::runSweep(suite(), points, jobs());
}

/**
 * One-line JSON footer with the sweep's timing so BENCH_*.json
 * captures the perf trajectory: jobs count, wall/cpu milliseconds,
 * throughput, and per-point elapsed milliseconds in submission
 * order.
 */
inline void
printSweepJson(const std::string &bench,
               const core::SweepResult &result)
{
    const core::SweepSummary &s = result.summary;
    std::ostringstream out;
    out.setf(std::ios::fixed);
    out.precision(3);
    out << "{\"bench\":\"" << bench << "\",\"jobs\":" << s.jobs
        << ",\"points\":" << s.points << ",\"wall_ms\":" << s.wallMs
        << ",\"cpu_ms\":" << s.cpuMs
        << ",\"points_per_sec\":" << s.pointsPerSec()
        << ",\"parallel_efficiency\":" << s.parallelEfficiency()
        << ",\"total_cycles\":" << s.totalCycles
        << ",\"total_instructions\":" << s.totalInstructions
        << ",\"point_ms\":[";
    for (std::size_t i = 0; i < result.points.size(); ++i)
        out << (i ? "," : "") << result.points[i].elapsedMs;
    out << "]}";
    std::cout << "\n" << out.str() << "\n";
}

/** Banner printed by every harness. */
inline void
banner(const std::string &experiment, const std::string &paper_says)
{
    std::cout << "# " << experiment << "\n"
              << "# paper: " << paper_says << "\n"
              << "# working set: query "
              << suite().input().query.id() << " ("
              << suite().input().query.length() << " aa) vs "
              << suite().input().db.size() << " sequences / "
              << suite().input().db.totalResidues()
              << " residues (BIOARCH_DB_SEQS to scale)\n";
}

} // namespace bioarch::bench

#endif // BIOARCH_BENCH_COMMON_HH
