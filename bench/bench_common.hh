/**
 * @file
 * Shared plumbing for the figure/table regeneration harnesses.
 *
 * Every harness prints the rows/series of one table or figure from
 * the paper's evaluation section, computed from freshly generated
 * traces on the synthetic working set (see DESIGN.md for the
 * scaling notes; set BIOARCH_DB_SEQS to enlarge the database).
 */

#ifndef BIOARCH_BENCH_COMMON_HH
#define BIOARCH_BENCH_COMMON_HH

#include <iostream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "core/percentile.hh"
#include "core/report.hh"
#include "core/suite.hh"
#include "core/sweep.hh"

namespace bioarch::bench
{

/** The per-process workload suite (traces generated lazily). */
inline core::WorkloadSuite &
suite()
{
    static core::WorkloadSuite s;
    return s;
}

/** Worker count for the harnesses (BIOARCH_JOBS overrides). */
inline unsigned
jobs()
{
    return core::ThreadPool::defaultJobs();
}

/**
 * Fan the harness's simulation points out across jobs() threads.
 * Results come back in submission order, bit-for-bit identical to
 * simulating serially, so callers index them with the same loop
 * nest that built the points.
 */
inline core::SweepResult
runSweep(const std::vector<core::SweepPoint> &points)
{
    return core::runSweep(suite(), points, jobs());
}

/**
 * The one-line JSON footer every harness ends with, so archived
 * BENCH_*.json files capture the perf trajectory: jobs count,
 * wall/cpu milliseconds, throughput, p50/p95/p99 of the per-point
 * times (core/percentile.hh — the same helper the serving engine's
 * latency report uses), harness-specific extras, and the raw
 * per-point milliseconds in submission order.
 *
 * @param extra preformatted (key, value) pairs appended verbatim
 *        (values must already be valid JSON)
 */
inline void
printJsonFooter(
    const std::string &bench, unsigned jobs, std::size_t points,
    double wall_ms, double cpu_ms,
    const std::vector<std::pair<std::string, std::string>> &extra,
    const std::vector<double> &point_ms)
{
    const double throughput =
        wall_ms <= 0.0
        ? 0.0
        : 1000.0 * static_cast<double>(points) / wall_ms;
    const double efficiency = wall_ms <= 0.0 || jobs == 0
        ? 0.0
        : cpu_ms / (wall_ms * static_cast<double>(jobs));

    std::ostringstream out;
    out.setf(std::ios::fixed);
    out.precision(3);
    out << "{\"bench\":\"" << bench << "\",\"jobs\":" << jobs
        << ",\"points\":" << points << ",\"wall_ms\":" << wall_ms
        << ",\"cpu_ms\":" << cpu_ms
        << ",\"points_per_sec\":" << throughput
        << ",\"parallel_efficiency\":" << efficiency
        << ",\"p50_ms\":" << core::percentile(point_ms, 50.0)
        << ",\"p95_ms\":" << core::percentile(point_ms, 95.0)
        << ",\"p99_ms\":" << core::percentile(point_ms, 99.0);
    for (const auto &[key, value] : extra)
        out << ",\"" << key << "\":" << value;
    out << ",\"point_ms\":[";
    for (std::size_t i = 0; i < point_ms.size(); ++i)
        out << (i ? "," : "") << point_ms[i];
    out << "]}";
    std::cout << "\n" << out.str() << "\n";
}

/** printJsonFooter() over a sweep's result. */
inline void
printSweepJson(const std::string &bench,
               const core::SweepResult &result)
{
    const core::SweepSummary &s = result.summary;
    std::vector<double> point_ms;
    point_ms.reserve(result.points.size());
    for (const core::SweepPointResult &p : result.points)
        point_ms.push_back(p.elapsedMs);
    printJsonFooter(
        bench, s.jobs, s.points, s.wallMs, s.cpuMs,
        {{"total_cycles", std::to_string(s.totalCycles)},
         {"total_instructions",
          std::to_string(s.totalInstructions)}},
        point_ms);
}

/** Banner printed by every harness. */
inline void
banner(const std::string &experiment, const std::string &paper_says)
{
    std::cout << "# " << experiment << "\n"
              << "# paper: " << paper_says << "\n"
              << "# working set: query "
              << suite().input().query.id() << " ("
              << suite().input().query.length() << " aa) vs "
              << suite().input().db.size() << " sequences / "
              << suite().input().db.totalResidues()
              << " residues (BIOARCH_DB_SEQS to scale)\n";
}

} // namespace bioarch::bench

#endif // BIOARCH_BENCH_COMMON_HH
