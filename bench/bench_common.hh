/**
 * @file
 * Shared plumbing for the figure/table regeneration harnesses.
 *
 * Every harness prints the rows/series of one table or figure from
 * the paper's evaluation section, computed from freshly generated
 * traces on the synthetic working set (see DESIGN.md for the
 * scaling notes; set BIOARCH_DB_SEQS to enlarge the database).
 */

#ifndef BIOARCH_BENCH_COMMON_HH
#define BIOARCH_BENCH_COMMON_HH

#include <iostream>

#include "core/report.hh"
#include "core/suite.hh"

namespace bioarch::bench
{

/** The per-process workload suite (traces generated lazily). */
inline core::WorkloadSuite &
suite()
{
    static core::WorkloadSuite s;
    return s;
}

/** Banner printed by every harness. */
inline void
banner(const std::string &experiment, const std::string &paper_says)
{
    std::cout << "# " << experiment << "\n"
              << "# paper: " << paper_says << "\n"
              << "# working set: query "
              << suite().input().query.id() << " ("
              << suite().input().query.length() << " aa) vs "
              << suite().input().db.size() << " sequences / "
              << suite().input().db.totalResidues()
              << " residues (BIOARCH_DB_SEQS to scale)\n";
}

} // namespace bioarch::bench

#endif // BIOARCH_BENCH_COMMON_HH
