/**
 * @file
 * Fig. 8: speedup of SW_vmx256 over SW_vmx128 across core widths,
 * with and without one extra cycle of 256-bit vector-load latency
 * (the "same load/store bandwidth" scenario).
 */

#include "bench_common.hh"

using namespace bioarch;

namespace
{

/** A 12-way point between the paper's 8- and 16-way presets. */
sim::CoreConfig
core12Way()
{
    sim::CoreConfig c = sim::core8Way();
    c.name = "12-way";
    c.fetchWidth = 12;
    c.renameWidth = 12;
    c.dispatchWidth = 12;
    c.retireWidth = 16;
    c.ibuffer = 54;
    c.units = {6, 8, 6, 5, 4, 3, 3, 3};
    c.issueQueue = {60, 60, 60, 60, 60, 60, 60, 60};
    c.maxOutstandingMisses = 12;
    c.dcachePorts = 5;
    c.dcacheWritePorts = 3;
    return c;
}

} // namespace

int
main()
{
    bench::banner(
        "Fig. 8 - SIMD speedup vs core width and load latency",
        "the 256-bit version's ~17% instruction reduction buys "
        "only ~9% time; with +1 cycle on wide vector loads it "
        "stays ~5% faster than 128-bit");

    const auto &v128 =
        bench::suite().trace(kernels::Workload::SwVmx128);
    const auto &v256 =
        bench::suite().trace(kernels::Workload::SwVmx256);

    std::vector<sim::CoreConfig> widths = {
        sim::core4Way(), sim::core8Way(), core12Way(),
        sim::core16Way()};

    core::Table t({"width", "SW_vmx128", "SW_vmx256",
                   "SW_vmx256 + 1 lat"});
    for (const sim::CoreConfig &core_cfg : widths) {
        sim::SimConfig cfg;
        cfg.core = core_cfg;
        const std::uint64_t base =
            core::simulate(v128, cfg).cycles;
        const std::uint64_t fast =
            core::simulate(v256, cfg).cycles;
        sim::SimConfig penal = cfg;
        penal.memory.wideVectorLoadPenalty = 1;
        const std::uint64_t slow =
            core::simulate(v256, penal).cycles;

        t.row()
            .add(core_cfg.name)
            .add(1.0, 3)
            .add(static_cast<double>(base)
                     / static_cast<double>(fast),
                 3)
            .add(static_cast<double>(base)
                     / static_cast<double>(slow),
                 3);
    }
    t.print(std::cout);
    return 0;
}
