/**
 * @file
 * Fig. 8: speedup of SW_vmx256 over SW_vmx128 across core widths,
 * with and without one extra cycle of 256-bit vector-load latency
 * (the "same load/store bandwidth" scenario).
 */

#include "bench_common.hh"

using namespace bioarch;

namespace
{

/** A 12-way point between the paper's 8- and 16-way presets. */
sim::CoreConfig
core12Way()
{
    sim::CoreConfig c = sim::core8Way();
    c.name = "12-way";
    c.fetchWidth = 12;
    c.renameWidth = 12;
    c.dispatchWidth = 12;
    c.retireWidth = 16;
    c.ibuffer = 54;
    c.units = {6, 8, 6, 5, 4, 3, 3, 3};
    c.issueQueue = {60, 60, 60, 60, 60, 60, 60, 60};
    c.maxOutstandingMisses = 12;
    c.dcachePorts = 5;
    c.dcacheWritePorts = 3;
    return c;
}

} // namespace

int
main()
{
    bench::banner(
        "Fig. 8 - SIMD speedup vs core width and load latency",
        "the 256-bit version's ~17% instruction reduction buys "
        "only ~9% time; with +1 cycle on wide vector loads it "
        "stays ~5% faster than 128-bit");

    std::vector<sim::CoreConfig> widths = {
        sim::core4Way(), sim::core8Way(), core12Way(),
        sim::core16Way()};

    // Three points per width: the 128-bit baseline, the 256-bit
    // kernel, and the 256-bit kernel with the load penalty.
    std::vector<core::SweepPoint> points;
    for (const sim::CoreConfig &core_cfg : widths) {
        core::SweepPoint base;
        base.workload = kernels::Workload::SwVmx128;
        base.config.core = core_cfg;
        base.label = core_cfg.name + "/vmx128";
        points.push_back(std::move(base));

        core::SweepPoint fast;
        fast.workload = kernels::Workload::SwVmx256;
        fast.config.core = core_cfg;
        fast.label = core_cfg.name + "/vmx256";
        points.push_back(std::move(fast));

        core::SweepPoint slow;
        slow.workload = kernels::Workload::SwVmx256;
        slow.config.core = core_cfg;
        slow.config.memory.wideVectorLoadPenalty = 1;
        slow.label = core_cfg.name + "/vmx256+1lat";
        points.push_back(std::move(slow));
    }
    const core::SweepResult sweep = bench::runSweep(points);

    core::Table t({"width", "SW_vmx128", "SW_vmx256",
                   "SW_vmx256 + 1 lat"});
    std::size_t i = 0;
    for (const sim::CoreConfig &core_cfg : widths) {
        const std::uint64_t base = sweep.stats(i++).cycles;
        const std::uint64_t fast = sweep.stats(i++).cycles;
        const std::uint64_t slow = sweep.stats(i++).cycles;

        t.row()
            .add(core_cfg.name)
            .add(1.0, 3)
            .add(static_cast<double>(base)
                     / static_cast<double>(fast),
                 3)
            .add(static_cast<double>(base)
                     / static_cast<double>(slow),
                 3);
    }
    t.print(std::cout);

    bench::printSweepJson("fig08_simd_width_latency", sweep);
    return 0;
}
