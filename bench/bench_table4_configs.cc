/**
 * @file
 * Tables IV, V, VI and VII: the evaluated processor, memory, and
 * branch-predictor configurations, and the trauma taxonomy.
 */

#include "sim/trauma.hh"

#include "bench_common.hh"

using namespace bioarch;

int
main()
{
    bench::banner("Tables IV-VII - simulated machine configurations",
                  "4/8/16-way cores, me1-meinf memories, combined "
                  "GP predictor, 56 trauma classes");

    core::printHeading(std::cout,
                       "Table IV - processor configurations");
    core::Table t4({"Parameter", "4-way", "8-way", "16-way"});
    const auto &cores = core::coreSweep();
    auto row4 = [&](const char *name, auto get) {
        auto &r = t4.row().add(name);
        for (const sim::CoreConfig &c : cores)
            r.add(get(c));
    };
    row4("Fetch", [](const auto &c) { return c.fetchWidth; });
    row4("Rename", [](const auto &c) { return c.renameWidth; });
    row4("Dispatch", [](const auto &c) { return c.dispatchWidth; });
    row4("Retire", [](const auto &c) { return c.retireWidth; });
    row4("Inflight instrs",
         [](const auto &c) { return c.inflightLimit; });
    row4("GPR", [](const auto &c) { return c.gprRegs; });
    row4("VPR", [](const auto &c) { return c.vprRegs; });
    row4("FPR", [](const auto &c) { return c.fprRegs; });
    for (int f = 0; f < sim::numFuClasses; ++f) {
        const auto cls = static_cast<sim::FuClass>(f);
        row4((std::string("Units ")
              + std::string(sim::fuClassName(cls)))
                 .c_str(),
             [f](const auto &c) {
                 return c.units[static_cast<std::size_t>(f)];
             });
    }
    row4("Issue queue (each)", [](const auto &c) {
        return c.issueQueue[0];
    });
    row4("Ibuffer", [](const auto &c) { return c.ibuffer; });
    row4("Retire queue", [](const auto &c) { return c.retireQueue; });
    row4("DCache read ports",
         [](const auto &c) { return c.dcachePorts; });
    row4("DCache write ports",
         [](const auto &c) { return c.dcacheWritePorts; });
    row4("Max outstanding misses",
         [](const auto &c) { return c.maxOutstandingMisses; });
    t4.print(std::cout);

    core::printHeading(std::cout,
                       "Table V - memory configurations");
    core::Table t5({"Parameter", "me1", "me2", "me3", "me4",
                    "meinf"});
    const auto &mems = core::memorySweep();
    auto cache_row = [&](const char *name, auto get) {
        auto &r = t5.row().add(name);
        for (const sim::MemoryConfig &m : mems) {
            const sim::CacheConfig cc = get(m);
            r.add(cc.infinite()
                      ? std::string("Inf")
                      : std::to_string(cc.sizeBytes / 1024) + "K");
        }
    };
    cache_row("I-L1 size", [](const auto &m) { return m.il1; });
    cache_row("D-L1 size", [](const auto &m) { return m.dl1; });
    cache_row("L2 size", [](const auto &m) { return m.l2; });
    {
        auto &r = t5.row().add("D-L1 assoc / line / lat");
        for (const sim::MemoryConfig &m : mems)
            r.add(std::to_string(m.dl1.associativity) + "/"
                  + std::to_string(m.dl1.lineBytes) + "/"
                  + std::to_string(m.dl1.latency));
        auto &r2 = t5.row().add("L2 assoc / line / lat");
        for (const sim::MemoryConfig &m : mems)
            r2.add(std::to_string(m.l2.associativity) + "/"
                   + std::to_string(m.l2.lineBytes) + "/"
                   + std::to_string(m.l2.latency));
        auto &r3 = t5.row().add("Main memory latency");
        for (const sim::MemoryConfig &m : mems)
            r3.add(m.memLatency);
    }
    t5.print(std::cout);

    core::printHeading(std::cout,
                       "Table VI - branch predictor configuration");
    const sim::BranchPredictorConfig bp;
    core::Table t6({"Parameter", "Value"});
    t6.row().add("Predictor").add("combined (gshare + bimodal)");
    t6.row().add("Table size").add(bp.tableEntries);
    t6.row().add("NFA/BTB entries").add(bp.btbEntries);
    t6.row().add("NFA associativity").add(bp.btbAssociativity);
    t6.row().add("NFA miss latency").add(bp.nfaMissPenalty);
    t6.row()
        .add("Max predicted conditional branches")
        .add(bp.maxPredictedBranches);
    t6.row().add("Mispredict recovery cycles").add(bp.recoveryCycles);
    t6.print(std::cout);

    core::printHeading(std::cout,
                       "Table VII - trauma classes (Fig. 2 x-axis)");
    for (int i = 0; i < sim::numTraumas; ++i) {
        std::cout << sim::traumaName(static_cast<sim::Trauma>(i));
        std::cout << ((i + 1) % 8 == 0 ? '\n' : '\t');
    }
    std::cout << '\n';
    return 0;
}
