/**
 * @file
 * Fig. 1: instruction breakdown per workload (dynamic counts and
 * percentages per op class).
 */

#include "bench_common.hh"
#include "isa/opclass.hh"

using namespace bioarch;

int
main()
{
    bench::banner(
        "Fig. 1 - instruction breakdown",
        "ctrl: 25% SSEARCH / 18% FASTA / 16% BLAST vs ~2% SIMD; "
        "ialu: 44-54% scalar apps; vi 21% vmx128 -> 14% vmx256");

    // Category order of the paper's Fig. 1 legend.
    const isa::OpClass classes[] = {
        isa::OpClass::Other,     isa::OpClass::Branch,
        isa::OpClass::VecPerm,   isa::OpClass::VecSimple,
        isa::OpClass::VecLoad,   isa::OpClass::VecStore,
        isa::OpClass::IntLoad,   isa::OpClass::IntStore,
        isa::OpClass::IntAlu,
    };

    core::Table counts({"Class", "SSEARCH34", "SW_vmx128",
                        "SW_vmx256", "FASTA34", "BLAST"});
    core::Table pct = counts;

    std::array<trace::InstructionMix, kernels::numWorkloads> mixes;
    for (const kernels::Workload w : kernels::allWorkloads)
        mixes[static_cast<std::size_t>(w)] =
            bench::suite().trace(w).mix();

    for (const isa::OpClass cls : classes) {
        auto &rc = counts.row().add(std::string(opClassName(cls)));
        auto &rp = pct.row().add(std::string(opClassName(cls)));
        for (const kernels::Workload w : kernels::allWorkloads) {
            const auto &mix = mixes[static_cast<std::size_t>(w)];
            rc.add(mix.count(cls));
            rp.add(100.0 * mix.fraction(cls), 1);
        }
    }

    core::printHeading(std::cout, "dynamic instruction counts");
    counts.print(std::cout);
    core::printHeading(std::cout, "percent of trace");
    pct.print(std::cout);

    core::Table totals({"Application", "Total instructions"});
    for (const kernels::Workload w : kernels::allWorkloads)
        totals.row()
            .add(std::string(kernels::workloadName(w)))
            .add(static_cast<std::uint64_t>(
                mixes[static_cast<std::size_t>(w)].total));
    core::printHeading(std::cout, "totals");
    totals.print(std::cout);
    return 0;
}
