/**
 * @file
 * Traceback-tier harness: the cells/sec of the two reporting
 * kernels — Hirschberg's O(min(m, n))-space divide-and-conquer
 * local traceback and the banded X-drop gapped extension with its
 * per-cell direction bytes — followed by the end-to-end cost of
 * the serving tier's phase 2 (score -> align -> report) at
 * top-K 10 and 100 on the reference Zipf workload.
 *
 * Every alignment produced here is replayed through the
 * cigarScore() oracle; a CIGAR that does not reproduce its
 * reported score fails the run (exit 1), so the numbers can never
 * come from a kernel that quietly mis-traces.
 *
 * Knobs: BIOARCH_JOBS (engine workers), BIOARCH_DB_SEQS (serving
 * database size, default 200).
 */

#include <chrono>
#include <cstdlib>
#include <iostream>
#include <limits>
#include <vector>

#include "align/traceback/banded_extend.hh"
#include "align/traceback/cigar.hh"
#include "align/traceback/hirschberg.hh"
#include "bench_common.hh"
#include "bio/random.hh"
#include "bio/synthetic.hh"
#include "serve/engine.hh"

using namespace bioarch;

namespace
{

int
envInt(const char *name, int fallback)
{
    if (const char *env = std::getenv(name)) {
        const int n = std::atoi(env);
        if (n > 0)
            return n;
    }
    return fallback;
}

double
wallMsOf(const auto &fn)
{
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

} // namespace

int
main()
{
    bench::banner(
        "bench_traceback - alignment reporting kernels",
        "Hirschberg linear-space CIGAR traceback vs the banded "
        "X-drop extension, then the serving tier's two-phase "
        "(score -> align -> report) overhead");

    const bio::ScoringMatrix &matrix = bio::blosum62();
    const bio::GapPenalties gaps;

    // Homologous pairs (query + mutated copy) so both kernels
    // trace realistic alignments rather than noise.
    bio::Rng rng(0x7BACEBACull);
    struct Pair
    {
        bio::Sequence q;
        bio::Sequence s;
    };
    std::vector<Pair> pairs;
    for (int i = 0; i < 24; ++i) {
        const std::size_t len =
            300 + static_cast<std::size_t>(rng.below(500));
        bio::Sequence q = bio::makeRandomSequence(
            rng, static_cast<int>(len),
            "q" + std::to_string(i));
        bio::Sequence s = bio::mutate(rng, q, 0.85,
                                      "s" + std::to_string(i), "");
        pairs.push_back({std::move(q), std::move(s)});
    }

    bool cigars_ok = true;
    const auto check = [&](const align::CigarAlignment &aln,
                           const Pair &p) {
        if (aln.empty())
            return;
        try {
            if (align::cigarScore(aln, p.q, p.s, matrix, gaps)
                != aln.score)
                cigars_ok = false;
        } catch (const std::exception &) {
            cigars_ok = false;
        }
    };

    // Arm 1: Hirschberg full local traceback (best-of-3).
    constexpr int rounds = 3;
    align::TracebackStats hstats;
    double hirschberg_ms =
        std::numeric_limits<double>::infinity();
    for (int r = 0; r < rounds; ++r) {
        align::TracebackStats stats;
        const double ms = wallMsOf([&] {
            for (const Pair &p : pairs) {
                const align::CigarAlignment aln =
                    align::hirschbergAlign(p.q, p.s, matrix,
                                           gaps, &stats);
                if (r == 0)
                    check(aln, p);
            }
        });
        if (ms < hirschberg_ms) {
            hirschberg_ms = ms;
            hstats = stats;
        }
    }

    // Arm 2: banded X-drop extension over the same pairs (the
    // homolog sits near the main diagonal, so a centered band
    // covers it).
    align::TracebackStats bstats;
    double banded_ms = std::numeric_limits<double>::infinity();
    for (int r = 0; r < rounds; ++r) {
        align::TracebackStats stats;
        const double ms = wallMsOf([&] {
            for (const Pair &p : pairs) {
                const align::CigarAlignment aln =
                    align::bandedExtendAlign(p.q, p.s, matrix,
                                             gaps, 0, 32, 25,
                                             &stats);
                if (r == 0)
                    check(aln, p);
            }
        });
        if (ms < banded_ms) {
            banded_ms = ms;
            bstats = stats;
        }
    }

    const auto mcups = [](std::uint64_t cells, double ms) {
        return ms <= 0.0
            ? 0.0
            : static_cast<double>(cells) / (ms * 1e3);
    };

    // Phase-2 cost at top-K 10 and 100: the reference Zipf
    // workload score-only vs reporting, interleaved best-of-3.
    const int db_seqs = envInt("BIOARCH_DB_SEQS", 200);
    const bio::SequenceDatabase db =
        bio::makeZipfDatabase(db_seqs);
    serve::StreamSpec stream;
    stream.requests = 32;
    const std::vector<serve::Request> score_requests =
        serve::makeRequestStream(stream, bio::makeQuerySet());
    std::vector<serve::Request> report_requests = score_requests;
    for (serve::Request &r : report_requests)
        r.reportAlignments = true;

    struct PhaseCost
    {
        std::size_t topK;
        double scoreMs;
        double reportMs;
        std::uint64_t tracebackCells;
        double overheadPct() const
        {
            return scoreMs <= 0.0
                ? 0.0
                : 100.0 * (reportMs - scoreMs) / scoreMs;
        }
    };
    std::vector<PhaseCost> costs;
    for (const std::size_t top_k : {10u, 100u}) {
        serve::EngineConfig cfg;
        cfg.jobs = bench::jobs();
        cfg.topK = top_k;
        serve::Engine score_engine(db, cfg);
        serve::Engine report_engine(db, cfg);
        PhaseCost cost{top_k,
                       std::numeric_limits<double>::infinity(),
                       std::numeric_limits<double>::infinity(),
                       0};
        for (int r = 0; r < rounds; ++r) {
            std::vector<serve::Response> out;
            cost.scoreMs = std::min(
                cost.scoreMs, wallMsOf([&] {
                    out = score_engine.serveBatch(score_requests);
                }));
            cost.reportMs = std::min(
                cost.reportMs, wallMsOf([&] {
                    out = report_engine.serveBatch(
                        report_requests);
                }));
            if (r == 0) {
                cost.tracebackCells = 0;
                for (const serve::Response &resp : out)
                    cost.tracebackCells += resp.tracebackCells;
            }
        }
        costs.push_back(cost);
    }

    core::Table t({"metric", "value"});
    t.row().add("pairs").add(
        static_cast<std::uint64_t>(pairs.size()));
    t.row().add("hirschberg ms").add(hirschberg_ms, 2);
    t.row().add("hirschberg cells").add(hstats.totalCells);
    t.row().add("hirschberg mcups").add(
        mcups(hstats.totalCells, hirschberg_ms), 1);
    t.row().add("hirschberg peak cells").add(hstats.peakCells);
    t.row().add("banded ms").add(banded_ms, 2);
    t.row().add("banded cells").add(bstats.totalCells);
    t.row().add("banded mcups").add(
        mcups(bstats.totalCells, banded_ms), 1);
    for (const PhaseCost &c : costs) {
        const std::string k = std::to_string(c.topK);
        t.row().add("topK=" + k + " score-only ms")
            .add(c.scoreMs, 2);
        t.row().add("topK=" + k + " reporting ms")
            .add(c.reportMs, 2);
        t.row().add("topK=" + k + " overhead %")
            .add(c.overheadPct(), 1);
        t.row().add("topK=" + k + " traceback cells")
            .add(c.tracebackCells);
    }
    t.row().add("cigars replay ok").add(
        std::string(cigars_ok ? "yes" : "NO"));
    t.print(std::cout);
    if (!cigars_ok)
        std::cerr << "FAIL: a CIGAR did not replay to its "
                     "reported score\n";

    std::vector<double> point_ms = {hirschberg_ms, banded_ms};
    bench::printJsonFooter(
        "bench_traceback", bench::jobs(), pairs.size(),
        hirschberg_ms + banded_ms, hirschberg_ms + banded_ms,
        {{"hirschberg_ms", std::to_string(hirschberg_ms)},
         {"hirschberg_cells",
          std::to_string(hstats.totalCells)},
         {"hirschberg_mcups",
          std::to_string(mcups(hstats.totalCells,
                               hirschberg_ms))},
         {"hirschberg_peak_cells",
          std::to_string(hstats.peakCells)},
         {"banded_ms", std::to_string(banded_ms)},
         {"banded_cells", std::to_string(bstats.totalCells)},
         {"banded_mcups",
          std::to_string(mcups(bstats.totalCells, banded_ms))},
         {"topk10_score_ms", std::to_string(costs[0].scoreMs)},
         {"topk10_report_ms", std::to_string(costs[0].reportMs)},
         {"topk10_overhead_pct",
          std::to_string(costs[0].overheadPct())},
         {"topk100_score_ms", std::to_string(costs[1].scoreMs)},
         {"topk100_report_ms",
          std::to_string(costs[1].reportMs)},
         {"topk100_overhead_pct",
          std::to_string(costs[1].overheadPct())},
         {"cigars_ok", cigars_ok ? "true" : "false"}},
        point_ms);
    return cigars_ok ? 0 : 1;
}
