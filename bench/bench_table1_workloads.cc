/**
 * @file
 * Table I: the selected workloads and their input parameters.
 */

#include "bench_common.hh"

using namespace bioarch;

int
main()
{
    bench::banner("Table I - selected workload description",
                  "five applications: SSEARCH34, SW_vmx128, "
                  "SW_vmx256, FASTA34, NCBI BLAST");

    core::Table t({"Application", "Description", "Parameters"});
    t.row()
        .add("SSEARCH34")
        .add("best-known scalar Smith-Waterman (Gotoh, "
             "computation avoidance)")
        .add("-q -H -p -b 500 -d 0 -s BL62 -f 11 -g 1");
    t.row()
        .add("SW_vmx128")
        .add("data-parallel SW, Altivec 128-bit registers "
             "(8 x int16 lanes)")
        .add("-q -H -p -b 500 -d 0 -s BL62 -f 11 -g 1");
    t.row()
        .add("SW_vmx256")
        .add("futuristic SW, 256-bit registers (16 x int16 lanes)")
        .add("-q -H -p -b 500 -d 0 -s BL62 -f 11 -g 1");
    t.row()
        .add("FASTA34")
        .add("heuristic: ktup=2 diagonal prescreen + banded opt")
        .add("-q -H -p -b 500 -d 0 -s BL62 -f 11 -g 1");
    t.row()
        .add("NCBI BLAST")
        .add("heuristic: w=3 T=11 neighborhood words, two-hit, "
             "X-drop extension")
        .add("blastp -G 10 -E 1 -b 0");
    t.print(std::cout);

    std::cout << "\nScoring: BLOSUM62, gap open 10, gap extend 1 "
                 "(Section IV-A).\n";
    return 0;
}
