/**
 * @file
 * Seed-index harness: probe selectivity of the persistent k-mer
 * index (src/index) on the Zipf serving database, plus the
 * indexed-vs-full-scan serve A/B that backs the "Indexed serving"
 * numbers in EXPERIMENTS.md.
 *
 * Segment 1 sweeps the BLAST neighborhood threshold T over the
 * Table II query set and reports, per (query, T), the fraction of
 * database sequences and residues a probe marks as candidates —
 * the selectivity the indexed route's <= 20% scanned-residue
 * budget depends on.
 *
 * Segment 2 replays a BLAST-only request stream through two
 * engines over the same database — one with the seed index, one
 * without — in interleaved rounds, asserts the ranked hit lists
 * are identical, and reports the end-to-end speedup plus the
 * measured scanned-residue fraction (Response::residuesScanned).
 *
 * Knobs: BIOARCH_JOBS, BIOARCH_DB_SEQS (default 2000),
 * BIOARCH_INDEX_T (A/B neighborhood threshold, default 16 — the
 * indexed serving tier's reference configuration; at blastp's
 * T=11 the background noise of the synthetic database triggers
 * two-hit extensions nearly everywhere and the selectivity gate
 * correctly refuses to use the index).
 */

#include <chrono>
#include <cstdlib>
#include <limits>
#include <vector>

#include "bench_common.hh"
#include "bio/synthetic.hh"
#include "index/seed_index.hh"
#include "serve/engine.hh"

using namespace bioarch;

namespace
{

int
envInt(const char *name, int fallback)
{
    if (const char *env = std::getenv(name)) {
        const int n = std::atoi(env);
        if (n > 0)
            return n;
    }
    return fallback;
}

double
msSince(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start)
        .count();
}

/** Candidate residues of one probe over the whole database. */
std::uint64_t
candidateResidues(const bio::SequenceDatabase &db,
                  const std::vector<std::uint32_t> &candidates)
{
    std::uint64_t residues = 0;
    for (const std::uint32_t c : candidates)
        residues += db[c].length();
    return residues;
}

} // namespace

int
main()
{
    const int db_seqs = envInt("BIOARCH_DB_SEQS", 2000);
    const int ab_threshold = envInt("BIOARCH_INDEX_T", 16);

    const std::vector<bio::Sequence> queries = bio::makeQuerySet();
    const bio::SequenceDatabase db = bio::makeZipfDatabase(db_seqs);
    const bio::ScoringMatrix &matrix = bio::blosum62();

    const auto t_build = std::chrono::steady_clock::now();
    const index::SeedIndex idx = index::SeedIndex::build(db);
    const double build_ms = msSince(t_build);

    std::cout << "# bench_index - seed-index probe selectivity + "
                 "indexed serve A/B\n"
              << "# database: " << db.size() << " sequences / "
              << db.totalResidues()
              << " residues, Zipf lengths (BIOARCH_DB_SEQS to "
                 "scale)\n"
              << "# index: w=" << idx.wordSize() << ", "
              << idx.numPostings() << " postings, built in "
              << build_ms << " ms\n";

    // Segment 1: probe selectivity per (query, T). The probe never
    // touches subject residues, so this sweep times the pure
    // index-join cost as well.
    core::Table sel({"query", "T", "candidates", "seq frac",
                     "residue frac", "seed hits", "probe us"});
    for (const bio::Sequence &q : queries) {
        for (const int t : {11, 13, 15, 16, 17}) {
            align::BlastParams params;
            params.neighborThreshold = t;
            const align::NeighborhoodIndex nbhd(q, matrix, params);
            index::ProbeStats stats;
            const auto t_probe = std::chrono::steady_clock::now();
            const std::vector<std::uint32_t> candidates =
                index::probeCandidates(idx, nbhd, params, 0,
                                       db.size(), &stats);
            const double probe_ms = msSince(t_probe);
            const double seq_frac =
                static_cast<double>(candidates.size())
                / static_cast<double>(db.size());
            const double res_frac =
                static_cast<double>(
                    candidateResidues(db, candidates))
                / static_cast<double>(db.totalResidues());
            sel.row()
                .add(q.id())
                .add(t)
                .add(static_cast<std::uint64_t>(candidates.size()))
                .add(seq_frac, 3)
                .add(res_frac, 3)
                .add(stats.seedHits)
                .add(probe_ms * 1000.0, 1);
        }
    }
    sel.print(std::cout);

    // Segment 2: indexed vs full-scan serving of a BLAST-only
    // stream, interleaved rounds, per-arm min. Both arms run the
    // same neighborhood threshold so the ranked hit lists must be
    // bit-identical (the indexed route only skips sequences whose
    // hit pattern can never trigger an extension).
    serve::StreamSpec stream;
    stream.requests = 32;
    stream.kinds = {kernels::Workload::Blast};
    const std::vector<serve::Request> requests =
        serve::makeRequestStream(stream, queries);

    serve::EngineConfig full_cfg;
    full_cfg.jobs = bench::jobs();
    full_cfg.shards = 4;
    full_cfg.batch = 8;
    full_cfg.blast.neighborThreshold = ab_threshold;
    serve::EngineConfig indexed_cfg = full_cfg;
    indexed_cfg.seedIndex = &idx;

    serve::Engine full_engine(db, full_cfg);
    serve::Engine indexed_engine(db, indexed_cfg);

    constexpr int rounds = 3;
    double full_ms = std::numeric_limits<double>::infinity();
    double indexed_ms = std::numeric_limits<double>::infinity();
    std::uint64_t full_residues = 0;
    std::uint64_t indexed_residues = 0;
    serve::StreamReport report;
    std::vector<serve::Response> full_responses;
    for (int r = 0; r < rounds; ++r) {
        serve::StreamReport fr = full_engine.serveStream(requests);
        full_ms = std::min(full_ms, fr.wallMs);
        serve::StreamReport ir =
            indexed_engine.serveStream(requests);
        if (ir.wallMs < indexed_ms) {
            indexed_ms = ir.wallMs;
            report = std::move(ir);
        }
        if (r == 0) {
            full_responses = std::move(fr.responses);
            full_residues = 0;
            indexed_residues = 0;
            for (const serve::Response &resp : full_responses)
                full_residues += resp.residuesScanned;
            for (const serve::Response &resp : report.responses)
                indexed_residues += resp.residuesScanned;
        }
    }

    // The indexed route must be invisible in the ranked results.
    for (std::size_t i = 0; i < full_responses.size(); ++i) {
        const auto &a = full_responses[i].hits;
        const auto &b = report.responses[i].hits;
        if (a.size() != b.size()) {
            std::cerr << "FAIL: request " << i
                      << " hit count differs (indexed " << b.size()
                      << " vs full " << a.size() << ")\n";
            return 1;
        }
        for (std::size_t h = 0; h < a.size(); ++h)
            if (a[h].dbIndex != b[h].dbIndex
                || a[h].score != b[h].score) {
                std::cerr << "FAIL: request " << i << " hit " << h
                          << " differs (indexed db "
                          << b[h].dbIndex << " score " << b[h].score
                          << " vs full db " << a[h].dbIndex
                          << " score " << a[h].score << ")\n";
                return 1;
            }
    }

    const double residue_frac = full_residues == 0
        ? 0.0
        : static_cast<double>(indexed_residues)
            / static_cast<double>(full_residues);
    const std::uint64_t fallbacks =
        indexed_engine.metrics().counterValue(
            "index_fallback_scan_total");
    const std::uint64_t probes =
        indexed_engine.metrics().counterValue("index_probe_total");

    core::Table ab({"metric", "value"});
    ab.row().add("requests").add(
        static_cast<std::uint64_t>(requests.size()));
    ab.row().add("neighborhood T").add(ab_threshold);
    ab.row().add("full-scan wall ms").add(full_ms, 2);
    ab.row().add("indexed wall ms").add(indexed_ms, 2);
    ab.row().add("speedup").add(full_ms / indexed_ms, 2);
    ab.row().add("residue fraction").add(residue_frac, 3);
    ab.row().add("index probes").add(probes);
    ab.row().add("fallback scans").add(fallbacks);
    ab.print(std::cout);

    std::vector<double> point_ms;
    point_ms.reserve(report.responses.size());
    for (const serve::Response &r : report.responses)
        point_ms.push_back(r.latencyUs() / 1000.0);

    bench::printJsonFooter(
        "bench_index", report.jobs, report.responses.size(),
        report.wallMs, report.cpuMs,
        {{"db_seqs", std::to_string(db.size())},
         {"db_residues", std::to_string(db.totalResidues())},
         {"index_postings", std::to_string(idx.numPostings())},
         {"index_build_ms", std::to_string(build_ms)},
         {"neighbor_threshold", std::to_string(ab_threshold)},
         {"full_wall_ms", std::to_string(full_ms)},
         {"indexed_wall_ms", std::to_string(indexed_ms)},
         {"index_speedup", std::to_string(full_ms / indexed_ms)},
         {"residue_fraction", std::to_string(residue_frac)},
         {"index_probes", std::to_string(probes)},
         {"index_fallbacks", std::to_string(fallbacks)}},
        point_ms);
    return 0;
}
