/**
 * @file
 * Fig. 6: DL1 miss rate and IPC versus cache associativity
 * (1/2/4/8-way at 32K, 4-way core).
 */

#include "bench_common.hh"

using namespace bioarch;

int
main()
{
    bench::banner(
        "Fig. 6 - DL1 miss rate and IPC vs associativity (32K)",
        "only BLAST's misses drop with associativity, and even "
        "there IPC barely moves: 32K is simply too small for "
        "BLAST");

    const int assocs[] = {1, 2, 4, 8};

    std::vector<core::SweepPoint> points;
    for (const int assoc : assocs)
        for (const kernels::Workload w : kernels::allWorkloads) {
            core::SweepPoint p; // 4-way, me1 (32K/32K/1M)
            p.workload = w;
            p.config.memory.dl1.associativity = assoc;
            p.label = std::to_string(assoc) + "-way";
            points.push_back(std::move(p));
        }
    const core::SweepResult sweep = bench::runSweep(points);

    core::Table miss({"assoc", "SSEARCH34", "SW_vmx128",
                      "SW_vmx256", "FASTA34", "BLAST"});
    core::Table ipc = miss;

    std::size_t i = 0;
    for (const int assoc : assocs) {
        auto &rm = miss.row().add(assoc);
        auto &ri = ipc.row().add(assoc);
        for (int w = 0; w < kernels::numWorkloads; ++w) {
            const sim::SimStats &stats = sweep.stats(i++);
            rm.add(100.0 * stats.dl1MissRate(), 2);
            ri.add(stats.ipc(), 3);
        }
    }

    core::printHeading(std::cout, "(a) DL1 miss rate [%]");
    miss.print(std::cout);
    core::printHeading(std::cout, "(b) IPC");
    ipc.print(std::cout);

    bench::printSweepJson("fig06_associativity", sweep);
    return 0;
}
