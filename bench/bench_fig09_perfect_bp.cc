/**
 * @file
 * Fig. 9: IPC with the real (combined) branch predictor versus a
 * perfect predictor, across core widths.
 */

#include "bench_common.hh"

using namespace bioarch;

int
main()
{
    bench::banner(
        "Fig. 9 - perfect vs real branch predictor",
        "negligible for the SIMD codes; critical for SSEARCH34, "
        "FASTA and BLAST");

    for (const kernels::Workload w : kernels::allWorkloads) {
        core::printHeading(
            std::cout, std::string(kernels::workloadName(w)));
        core::Table t({"predictor", "4-way", "8-way", "16-way"});
        for (const sim::PredictorKind kind :
             {sim::PredictorKind::Perfect,
              sim::PredictorKind::Combined}) {
            auto &row = t.row().add(
                kind == sim::PredictorKind::Perfect
                    ? "Perfect-BP"
                    : "Real-BP");
            for (const sim::CoreConfig &core_cfg :
                 core::coreSweep()) {
                sim::SimConfig cfg;
                cfg.core = core_cfg;
                cfg.bpred.kind = kind;
                const sim::SimStats stats =
                    core::simulate(bench::suite().trace(w), cfg);
                row.add(stats.ipc(), 3);
            }
        }
        t.print(std::cout);
    }
    return 0;
}
