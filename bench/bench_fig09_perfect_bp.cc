/**
 * @file
 * Fig. 9: IPC with the real (combined) branch predictor versus a
 * perfect predictor, across core widths.
 */

#include "bench_common.hh"

using namespace bioarch;

int
main()
{
    bench::banner(
        "Fig. 9 - perfect vs real branch predictor",
        "negligible for the SIMD codes; critical for SSEARCH34, "
        "FASTA and BLAST");

    const sim::PredictorKind kinds[] = {sim::PredictorKind::Perfect,
                                        sim::PredictorKind::Combined};

    std::vector<core::SweepPoint> points;
    for (const kernels::Workload w : kernels::allWorkloads)
        for (const sim::PredictorKind kind : kinds)
            for (const sim::CoreConfig &core_cfg :
                 core::coreSweep()) {
                core::SweepPoint p;
                p.workload = w;
                p.config.core = core_cfg;
                p.config.bpred.kind = kind;
                p.label = std::string(sim::predictorKindName(kind))
                    + "/" + core_cfg.name;
                points.push_back(std::move(p));
            }
    const core::SweepResult sweep = bench::runSweep(points);

    std::size_t i = 0;
    for (const kernels::Workload w : kernels::allWorkloads) {
        core::printHeading(
            std::cout, std::string(kernels::workloadName(w)));
        core::Table t({"predictor", "4-way", "8-way", "16-way"});
        for (const sim::PredictorKind kind : kinds) {
            auto &row = t.row().add(
                kind == sim::PredictorKind::Perfect ? "Perfect-BP"
                                                    : "Real-BP");
            for (std::size_t c = 0; c < core::coreSweep().size();
                 ++c)
                row.add(sweep.stats(i++).ipc(), 3);
        }
        t.print(std::cout);
    }

    bench::printSweepJson("fig09_perfect_bp", sweep);
    return 0;
}
