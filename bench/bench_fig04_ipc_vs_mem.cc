/**
 * @file
 * Fig. 4: IPC per application across memory configurations and
 * core widths.
 */

#include "bench_common.hh"

using namespace bioarch;

int
main()
{
    bench::banner(
        "Fig. 4 - IPC vs memory configuration x core width",
        "only the SIMD codes exceed 2 IPC; FASTA/SSEARCH IPC flat "
        "vs memory; BLAST ~52% slower with 32K L1s than with ideal "
        "memory");

    std::vector<core::SweepPoint> points;
    for (const kernels::Workload w : kernels::allWorkloads)
        for (const sim::MemoryConfig &mem : core::memorySweep())
            for (const sim::CoreConfig &core_cfg :
                 core::coreSweep()) {
                core::SweepPoint p;
                p.workload = w;
                p.config.core = core_cfg;
                p.config.memory = mem;
                p.label = mem.name + "/" + core_cfg.name;
                points.push_back(std::move(p));
            }
    // The headline BLAST pair: small (me1) vs ideal memory on the
    // 4-way core, appended as two extra points of the same sweep.
    {
        core::SweepPoint small;
        small.workload = kernels::Workload::Blast;
        small.label = "blast-small";
        points.push_back(small);
        core::SweepPoint ideal;
        ideal.workload = kernels::Workload::Blast;
        ideal.config.memory = sim::memoryInf();
        ideal.label = "blast-ideal";
        points.push_back(ideal);
    }
    const core::SweepResult sweep = bench::runSweep(points);

    std::size_t i = 0;
    for (const kernels::Workload w : kernels::allWorkloads) {
        core::printHeading(
            std::cout, std::string(kernels::workloadName(w)));
        core::Table t({"memory", "4-way", "8-way", "16-way"});
        for (const sim::MemoryConfig &mem : core::memorySweep()) {
            auto &row = t.row().add(mem.name);
            for (std::size_t c = 0; c < core::coreSweep().size();
                 ++c)
                row.add(sweep.stats(i++).ipc(), 3);
        }
        t.print(std::cout);
    }

    const double ipc_small = sweep.stats(i++).ipc();
    const double ipc_ideal = sweep.stats(i++).ipc();
    std::cout << "\nBLAST slowdown, ideal -> 32K/32K/1M: "
              << static_cast<int>(100.0
                                  * (1.0 - ipc_small / ipc_ideal))
              << "% (paper: 52%)\n";

    bench::printSweepJson("fig04_ipc_vs_mem", sweep);
    return 0;
}
