/**
 * @file
 * Fig. 4: IPC per application across memory configurations and
 * core widths.
 */

#include "bench_common.hh"

using namespace bioarch;

int
main()
{
    bench::banner(
        "Fig. 4 - IPC vs memory configuration x core width",
        "only the SIMD codes exceed 2 IPC; FASTA/SSEARCH IPC flat "
        "vs memory; BLAST ~52% slower with 32K L1s than with ideal "
        "memory");

    for (const kernels::Workload w : kernels::allWorkloads) {
        core::printHeading(
            std::cout, std::string(kernels::workloadName(w)));
        core::Table t({"memory", "4-way", "8-way", "16-way"});
        for (const sim::MemoryConfig &mem : core::memorySweep()) {
            auto &row = t.row().add(mem.name);
            for (const sim::CoreConfig &core_cfg :
                 core::coreSweep()) {
                sim::SimConfig cfg;
                cfg.core = core_cfg;
                cfg.memory = mem;
                const sim::SimStats stats =
                    core::simulate(bench::suite().trace(w), cfg);
                row.add(stats.ipc(), 3);
            }
        }
        t.print(std::cout);
    }

    // The headline BLAST number: slowdown from ideal memory to me1
    // on the 4-way core.
    sim::SimConfig small;
    sim::SimConfig ideal;
    ideal.memory = sim::memoryInf();
    const auto &blast =
        bench::suite().trace(kernels::Workload::Blast);
    const double ipc_small = core::simulate(blast, small).ipc();
    const double ipc_ideal = core::simulate(blast, ideal).ipc();
    std::cout << "\nBLAST slowdown, ideal -> 32K/32K/1M: "
              << static_cast<int>(100.0
                                  * (1.0 - ipc_small / ipc_ideal))
              << "% (paper: 52%)\n";
    return 0;
}
