/**
 * @file
 * Query-length sweep: the paper evaluates 11 queries (Table II) but
 * shows results for one; it notes that "experiments performed over
 * bigger traces showed similar trends". This harness verifies that
 * claim for our reproduction: the characterization (IPC, miss
 * rate, prediction accuracy, dominant trauma family) is stable
 * across the Table II query lengths.
 */

#include "bench_common.hh"
#include "bio/synthetic.hh"

using namespace bioarch;

int
main()
{
    bench::banner(
        "Query sweep - characterization stability across Table II",
        "trends independent of the query ('bigger traces showed "
        "similar trends', Section IV-B)");

    const sim::SimConfig cfg; // 4-way, me1

    for (const kernels::Workload w :
         {kernels::Workload::Ssearch34, kernels::Workload::Blast}) {
        core::printHeading(
            std::cout, std::string(kernels::workloadName(w)));
        core::Table t({"query", "aa", "instrs", "IPC",
                       "DL1 miss %", "BP acc %", "top trauma"});
        // Every third query keeps the harness fast while spanning
        // the full 143-567 aa range.
        const auto &specs = bio::tableIIQueries();
        for (std::size_t qi = 0; qi < specs.size(); qi += 3) {
            kernels::TraceSpec spec;
            spec.queryAccession = specs[qi].accession;
            spec.dbSequences = 6;
            const kernels::TracedRun run =
                kernels::traceWorkload(w, spec);
            const sim::SimStats stats =
                core::simulate(run.trace, cfg);
            t.row()
                .add(specs[qi].accession)
                .add(specs[qi].length)
                .add(static_cast<std::uint64_t>(run.trace.size()))
                .add(stats.ipc(), 2)
                .add(100.0 * stats.dl1MissRate(), 2)
                .add(100.0 * stats.predictionAccuracy(), 1)
                .add(std::string(
                    sim::traumaName(stats.traumas.dominant())));
        }
        t.print(std::cout);
    }
    return 0;
}
