/**
 * @file
 * Extension experiment: the nucleotide word finder of Listing 1
 * (blastn) characterized next to the protein BLAST the paper
 * evaluates. The 256 KB direct-address word table makes blastn
 * even more memory-bound, while the packed-byte unpacking keeps
 * the ALU share high — the same bottleneck, amplified.
 */

#include "bench_common.hh"
#include "bio/nucleotide.hh"
#include "kernels/blastn_traced.hh"

using namespace bioarch;

int
main()
{
    bench::banner(
        "Extension - blastn (Listing 1) vs blastp",
        "the nucleotide table (256K of heads) exceeds every L1: "
        "BLAST's memory-bound character, amplified");

    // A DNA working set sized like the protein one.
    bio::Rng rng(0xD7A);
    const bio::PackedDna query = bio::makeRandomDna(rng, 888, "Q");
    const bio::DnaDatabase db =
        bio::makeDnaDatabase(8, 600, 1600, query, 2, 0xD7A);

    const kernels::BlastnTracedRun ntrun =
        kernels::traceBlastn(query, db);
    const kernels::TracedRun prun = kernels::traceWorkload(
        kernels::Workload::Blast, bench::suite().input());

    core::Table t({"metric", "blastp", "blastn"});
    const trace::InstructionMix pm = prun.trace.mix();
    const trace::InstructionMix nm = ntrun.trace.mix();
    t.row()
        .add("instructions")
        .add(static_cast<std::uint64_t>(prun.trace.size()))
        .add(static_cast<std::uint64_t>(ntrun.trace.size()));
    t.row()
        .add("ialu %")
        .add(100.0 * pm.fraction(isa::OpClass::IntAlu), 1)
        .add(100.0 * nm.fraction(isa::OpClass::IntAlu), 1);
    t.row()
        .add("load %")
        .add(100.0 * pm.loadFraction(), 1)
        .add(100.0 * nm.loadFraction(), 1);
    t.row()
        .add("ctrl %")
        .add(100.0 * pm.ctrlFraction(), 1)
        .add(100.0 * nm.ctrlFraction(), 1);

    for (const sim::MemoryConfig &mem :
         {sim::memoryMe1(), sim::memoryMe3(), sim::memoryInf()}) {
        sim::SimConfig cfg;
        cfg.memory = mem;
        const sim::SimStats ps = core::simulate(prun.trace, cfg);
        const sim::SimStats ns = core::simulate(ntrun.trace, cfg);
        t.row()
            .add("IPC @ " + mem.name)
            .add(ps.ipc(), 3)
            .add(ns.ipc(), 3);
        if (mem.name == "me1") {
            t.row()
                .add("DL1 miss % @ me1")
                .add(100.0 * ps.dl1MissRate(), 2)
                .add(100.0 * ns.dl1MissRate(), 2);
        }
    }
    t.print(std::cout);

    std::cout << "\n(blastn scores validated against "
                 "align::blastnScan: ";
    const align::DnaWordIndex index(query, 8);
    bool ok = true;
    for (std::size_t i = 0; i < db.size(); ++i) {
        const align::BlastnScores ref =
            align::blastnScan(index, query, db[i], {});
        ok &= ref.score == ntrun.scores[i];
    }
    std::cout << (ok ? "OK" : "MISMATCH") << ")\n";
    return ok ? 0 : 1;
}
