/**
 * @file
 * Table II: the query sequences used in the evaluations (synthetic
 * stand-ins with the paper's accessions and lengths).
 */

#include "bench_common.hh"
#include "bio/synthetic.hh"

using namespace bioarch;

int
main()
{
    bench::banner("Table II - query sequences",
                  "11 protein-family queries, 143-567 residues, "
                  "vs SwissProt");

    const auto queries = bio::makeQuerySet();
    core::Table t({"Protein Family", "Accession (ID)",
                   "Length (symbols)"});
    for (const bio::Sequence &q : queries) {
        t.row().add(q.description()).add(q.id()).add(
            static_cast<std::uint64_t>(q.length()));
    }
    t.print(std::cout);

    std::cout << "\nAll harnesses report results for Glutathione "
                 "S-transferase (P14942), as the paper does.\n";
    return 0;
}
