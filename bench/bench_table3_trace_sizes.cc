/**
 * @file
 * Table III: trace sizes (dynamic instruction counts) per
 * application, with the inter-application ratios the paper's
 * numbers imply.
 */

#include "bench_common.hh"

using namespace bioarch;

namespace
{

/** Paper Table III instruction counts. */
constexpr double paperCounts[] = {
    319808539.0, // SSEARCH
    78993134.0,  // SSEARCHVMX128
    65570645.0,  // SSEARCHVMX256
    27469429.0,  // FASTA
    7749725.0,   // BLAST
};

} // namespace

int
main()
{
    bench::banner("Table III - trace size (instruction count)",
                  "SSEARCH 319.8M, vmx128 79.0M, vmx256 65.6M, "
                  "FASTA 27.5M, BLAST 7.7M "
                  "(ratios vs SSEARCH: 1 / .247 / .205 / .086 / "
                  ".024)");

    const std::size_t ssearch = bench::suite()
        .trace(kernels::Workload::Ssearch34)
        .size();

    core::Table t({"Application", "Instructions", "vs SSEARCH",
                   "paper ratio"});
    int row = 0;
    for (const kernels::Workload w : kernels::allWorkloads) {
        const std::size_t n = bench::suite().trace(w).size();
        t.row()
            .add(std::string(kernels::workloadName(w)))
            .add(static_cast<std::uint64_t>(n))
            .add(static_cast<double>(n)
                     / static_cast<double>(ssearch),
                 3)
            .add(paperCounts[row] / paperCounts[0], 3);
        ++row;
    }
    t.print(std::cout);
    return 0;
}
