/**
 * @file
 * Ablation: next-line data prefetching. Every application streams
 * the database sequentially, and BLAST additionally walks CSR
 * position lists — both prefetchable — while its direct-indexed
 * table heads are random. The prefetcher therefore recovers part
 * (but only part) of BLAST's memory loss: its DL1 miss *rate*
 * barely moves (the random head misses remain) even though the
 * streaming L2 misses disappear.
 */

#include "bench_common.hh"

using namespace bioarch;

int
main()
{
    bench::banner(
        "Ablation - next-line data prefetch (4-way, me1)",
        "sequential streams are prefetchable; BLAST's random "
        "table-head accesses are not");

    core::Table t({"app", "DL1 miss % base", "DL1 miss % +pf",
                   "IPC base", "IPC +pf", "IPC gain %"});
    for (const kernels::Workload w : kernels::allWorkloads) {
        sim::SimConfig base; // 4-way, me1
        sim::SimConfig pf = base;
        pf.memory.dataPrefetch = true;

        const sim::SimStats b =
            core::simulate(bench::suite().trace(w), base);
        const sim::SimStats p =
            core::simulate(bench::suite().trace(w), pf);
        t.row()
            .add(std::string(kernels::workloadName(w)))
            .add(100.0 * b.dl1MissRate(), 2)
            .add(100.0 * p.dl1MissRate(), 2)
            .add(b.ipc(), 3)
            .add(p.ipc(), 3)
            .add(100.0 * (p.ipc() / b.ipc() - 1.0), 1);
    }
    t.print(std::cout);
    return 0;
}
