/**
 * @file
 * Native-speed microbenchmarks of the aligners (google-benchmark):
 * the Section-I claim that the heuristics are an order of
 * magnitude faster than rigorous Smith-Waterman, measured on real
 * wall-clock rather than in simulation.
 *
 * Ends with an interleaved A/B/C of the model-vector scan
 * (swSimdScan<8>, the Altivec software model) against the native
 * striped backend (sw_striped_native) and the native
 * inter-sequence backend (sw_intersequence_native), reported as
 * GCUPS in the standard JSON footer — the gate for the serving
 * engine's kernel swap — plus a GCUPS-by-subject-length-bucket
 * breakdown of striped vs inter-sequence that justifies the
 * serving engine's kernel-selection cutover.
 */

#include <benchmark/benchmark.h>

#include <chrono>
#include <limits>
#include <string>

#include "align/blast.hh"
#include "align/fasta.hh"
#include "align/smith_waterman.hh"
#include "align/ssearch.hh"
#include "align/sw_simd.hh"
#include "align/sw_intersequence_native.hh"
#include "align/sw_striped.hh"
#include "align/sw_striped_native.hh"
#include "bench_common.hh"
#include "bio/scoring.hh"
#include "bio/synthetic.hh"

namespace
{

using namespace bioarch;

const bio::ScoringMatrix &kMat = bio::blosum62();
const bio::GapPenalties kGaps{};

const bio::Sequence &
query()
{
    static const bio::Sequence q = bio::makeDefaultQuery();
    return q;
}

const bio::SequenceDatabase &
database()
{
    static const bio::SequenceDatabase db =
        bio::makeDefaultDatabase(60);
    return db;
}

void
BM_SmithWatermanScan(benchmark::State &state)
{
    std::uint64_t residues = 0;
    for (auto _ : state) {
        int best = 0;
        for (const bio::Sequence &s : database()) {
            best = std::max(
                best,
                align::smithWatermanScore(query(), s, kMat, kGaps)
                    .score);
            residues += s.length();
        }
        benchmark::DoNotOptimize(best);
    }
    state.counters["Mcells/s"] = benchmark::Counter(
        static_cast<double>(residues * query().length()) / 1e6,
        benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SmithWatermanScan)->Unit(benchmark::kMillisecond);

void
BM_SsearchScan(benchmark::State &state)
{
    const align::QueryProfile profile(query(), kMat);
    std::uint64_t residues = 0;
    for (auto _ : state) {
        int best = 0;
        for (const bio::Sequence &s : database()) {
            best = std::max(
                best, align::ssearchScan(profile, s, kGaps).score);
            residues += s.length();
        }
        benchmark::DoNotOptimize(best);
    }
    state.counters["Mcells/s"] = benchmark::Counter(
        static_cast<double>(residues * query().length()) / 1e6,
        benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SsearchScan)->Unit(benchmark::kMillisecond);

template <int N>
void
BM_SwSimdScan(benchmark::State &state)
{
    const align::VectorProfile<N> profile(query(), kMat);
    std::uint64_t residues = 0;
    for (auto _ : state) {
        int best = 0;
        for (const bio::Sequence &s : database()) {
            best = std::max(
                best,
                align::swSimdScan<N>(profile, s, kGaps).score);
            residues += s.length();
        }
        benchmark::DoNotOptimize(best);
    }
    state.counters["Mcells/s"] = benchmark::Counter(
        static_cast<double>(residues * query().length()) / 1e6,
        benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SwSimdScan<8>)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SwSimdScan<16>)->Unit(benchmark::kMillisecond);

template <int N>
void
BM_SwStripedScan(benchmark::State &state)
{
    const align::StripedProfile<N> profile(query(), kMat);
    std::uint64_t residues = 0;
    for (auto _ : state) {
        int best = 0;
        for (const bio::Sequence &s : database()) {
            best = std::max(
                best,
                align::swStripedScan<N>(profile, s, kGaps).score);
            residues += s.length();
        }
        benchmark::DoNotOptimize(best);
    }
    state.counters["Mcells/s"] = benchmark::Counter(
        static_cast<double>(residues * query().length()) / 1e6,
        benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SwStripedScan<8>)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SwStripedScan<16>)->Unit(benchmark::kMillisecond);

void
BM_FastaSearch(benchmark::State &state)
{
    for (auto _ : state) {
        const align::SearchResults res =
            align::fastaSearch(query(), database(), kMat, kGaps);
        benchmark::DoNotOptimize(res.hits.size());
    }
}
BENCHMARK(BM_FastaSearch)->Unit(benchmark::kMillisecond);

void
BM_BlastSearch(benchmark::State &state)
{
    for (auto _ : state) {
        const align::SearchResults res =
            align::blastSearch(query(), database(), kMat, kGaps);
        benchmark::DoNotOptimize(res.hits.size());
    }
}
BENCHMARK(BM_BlastSearch)->Unit(benchmark::kMillisecond);

void
BM_BlastNeighborhoodBuild(benchmark::State &state)
{
    const align::BlastParams params;
    for (auto _ : state) {
        const align::NeighborhoodIndex index(query(), kMat, params);
        benchmark::DoNotOptimize(index.numEntries());
    }
}
BENCHMARK(BM_BlastNeighborhoodBuild)->Unit(benchmark::kMillisecond);

void
BM_SwStripedNativeScan(benchmark::State &state,
                       align::SimdBackend backend)
{
    const align::NativeQueryProfile profile(query(), kMat, backend);
    std::uint64_t residues = 0;
    for (auto _ : state) {
        int best = 0;
        for (const bio::Sequence &s : database()) {
            best = std::max(
                best,
                align::swStripedNativeScan(profile, s, kGaps)
                    .score);
            residues += s.length();
        }
        benchmark::DoNotOptimize(best);
    }
    state.counters["Mcells/s"] = benchmark::Counter(
        static_cast<double>(residues * query().length()) / 1e6,
        benchmark::Counter::kIsRate);
}

/** One BM_SwStripedNativeScan instance per compiled backend. */
void
registerNativeBenchmarks()
{
    for (const align::SimdBackend backend :
         align::compiledNativeBackends()) {
        const std::string name = "BM_SwStripedNativeScan/"
            + std::string(align::backendName(backend));
        benchmark::RegisterBenchmark(name.c_str(),
                                     BM_SwStripedNativeScan,
                                     backend)
            ->Unit(benchmark::kMillisecond);
    }
}

/**
 * GCUPS-by-subject-length-bucket A/B of the striped vs the
 * inter-sequence kernel — the data behind the serving engine's
 * kernel-selection cutover (align::interSequenceCutover). Returns
 * a preformatted JSON object keyed by bucket label.
 */
std::string
runLengthBucketBreakdown(const align::NativeQueryProfile &profile)
{
    constexpr int rounds = 3;
    // A wider length spread than the default database — background
    // sequences only (planted homologs would all land near the
    // query lengths) — so every bucket, including the ones
    // bracketing the cutover, has subjects in it.
    static const bio::SequenceDatabase db = [] {
        bio::DatabaseSpec spec;
        spec.numSequences = 120;
        spec.minLength = 40;
        spec.maxLength = 2000;
        spec.homologsPerQuery = 0;
        spec.seed = 0xB0C4E75;
        return bio::makeDatabase(spec, bio::makeQuerySet());
    }();
    const std::size_t m = query().length();

    struct Bucket
    {
        const char *label;
        std::size_t maxLen; // exclusive upper bound
        std::vector<align::SubjectSpan> spans;
        std::vector<const bio::Sequence *> seqs;
        std::uint64_t cells = 0;
    };
    std::vector<Bucket> buckets{{"lt128", 128, {}, {}, 0},
                                {"128_255", 256, {}, {}, 0},
                                {"256_511", 512, {}, {}, 0},
                                {"ge512",
                                 std::numeric_limits<
                                     std::size_t>::max(),
                                 {}, {}, 0}};
    for (const bio::Sequence &s : db) {
        for (Bucket &b : buckets) {
            if (s.length() < b.maxLen) {
                b.spans.push_back(align::SubjectSpan{
                    s.residues().data(), s.length()});
                b.seqs.push_back(&s);
                b.cells += static_cast<std::uint64_t>(s.length())
                    * m;
                break;
            }
        }
    }

    using Clock = std::chrono::steady_clock;
    auto time_ms = [](auto &&scan) {
        const Clock::time_point t0 = Clock::now();
        int best = 0;
        scan(best);
        benchmark::DoNotOptimize(best);
        return std::chrono::duration<double, std::milli>(
                   Clock::now() - t0)
            .count();
    };

    std::string json = "{";
    bool first = true;
    for (Bucket &b : buckets) {
        if (b.spans.empty())
            continue;
        std::vector<align::LocalScore> out(b.spans.size());
        double striped_ms =
            std::numeric_limits<double>::infinity();
        double inter_ms = std::numeric_limits<double>::infinity();
        for (int r = 0; r < rounds; ++r) {
            striped_ms = std::min(striped_ms, time_ms([&](int &x) {
                for (const bio::Sequence *s : b.seqs)
                    x = std::max(
                        x,
                        align::swStripedNativeScan(profile, *s,
                                                   kGaps)
                            .score);
            }));
            inter_ms = std::min(inter_ms, time_ms([&](int &x) {
                align::swInterSequenceScan(profile,
                                           b.spans.data(),
                                           b.spans.size(), kGaps,
                                           out.data());
                for (const align::LocalScore &h : out)
                    x = std::max(x, h.score);
            }));
        }
        const auto gcups = [&b](double ms) {
            return ms <= 0.0
                ? 0.0
                : static_cast<double>(b.cells) / (ms * 1e6);
        };
        std::cout << "#   length " << b.label << ": "
                  << b.spans.size() << " subjects, striped "
                  << gcups(striped_ms) << " GCUPS / inter-seq "
                  << gcups(inter_ms) << " GCUPS\n";
        json += std::string(first ? "" : ",") + "\"" + b.label
            + "\":{\"subjects\":" + std::to_string(b.spans.size())
            + ",\"cells\":" + std::to_string(b.cells)
            + ",\"gcups_striped\":"
            + std::to_string(gcups(striped_ms))
            + ",\"gcups_intersequence\":"
            + std::to_string(gcups(inter_ms)) + "}";
        first = false;
    }
    json += "}";
    return json;
}

/**
 * The kernel-swap gate: interleaved A/B/C rounds of the
 * model-vector database scan vs the native striped and native
 * inter-sequence backends, single-threaded, per-arm minimum over
 * the rounds, GCUPS = DP cells / wall-ns. Interleaving (model,
 * striped, inter-seq, model, ...) means thermal or scheduler
 * drift hits every arm equally.
 */
void
runModelVsNativeGcups()
{
    constexpr int rounds = 5;
    const bio::Sequence &q = query();
    const bio::SequenceDatabase &db = database();
    const std::uint64_t cells = db.totalResidues() * q.length();

    const align::VectorProfile<8> model_profile(q, kMat);
    const align::SimdBackend backend = align::bestNativeBackend();
    const align::NativeQueryProfile native_profile(q, kMat,
                                                   backend);

    std::vector<align::SubjectSpan> spans;
    spans.reserve(db.size());
    for (const bio::Sequence &s : db)
        spans.push_back(
            align::SubjectSpan{s.residues().data(), s.length()});
    std::vector<align::LocalScore> inter_out(spans.size());

    using Clock = std::chrono::steady_clock;
    auto time_ms = [](auto &&scan_all) {
        const Clock::time_point t0 = Clock::now();
        int best = 0;
        scan_all(best);
        benchmark::DoNotOptimize(best);
        return std::chrono::duration<double, std::milli>(
                   Clock::now() - t0)
            .count();
    };
    auto model_scan = [&](int &best) {
        for (const bio::Sequence &s : db)
            best = std::max(
                best,
                align::swSimdScan<8>(model_profile, s, kGaps)
                    .score);
    };
    auto native_scan = [&](int &best) {
        for (const bio::Sequence &s : db)
            best = std::max(
                best,
                align::swStripedNativeScan(native_profile, s, kGaps)
                    .score);
    };
    auto inter_scan = [&](int &best) {
        align::swInterSequenceScan(native_profile, spans.data(),
                                   spans.size(), kGaps,
                                   inter_out.data());
        for (const align::LocalScore &h : inter_out)
            best = std::max(best, h.score);
    };

    double model_ms = std::numeric_limits<double>::infinity();
    double native_ms = std::numeric_limits<double>::infinity();
    double inter_ms = std::numeric_limits<double>::infinity();
    std::vector<double> point_ms;
    double wall_ms = 0.0;
    for (int r = 0; r < rounds; ++r) {
        const double m = time_ms(model_scan);
        const double n = time_ms(native_scan);
        const double i = time_ms(inter_scan);
        model_ms = std::min(model_ms, m);
        native_ms = std::min(native_ms, n);
        inter_ms = std::min(inter_ms, i);
        point_ms.push_back(m);
        point_ms.push_back(n);
        point_ms.push_back(i);
        wall_ms += m + n + i;
    }

    const auto gcups = [cells](double ms) {
        return ms <= 0.0
            ? 0.0
            : static_cast<double>(cells) / (ms * 1e6);
    };
    std::cout << "# model vs native striped vs inter-sequence scan ("
              << align::backendName(backend) << "), " << rounds
              << " interleaved rounds, per-arm min: model "
              << model_ms << " ms / striped " << native_ms
              << " ms / inter-seq " << inter_ms << " ms\n";
    const std::string buckets =
        runLengthBucketBreakdown(native_profile);
    bench::printJsonFooter(
        "bench_aligners", 1, point_ms.size(), wall_ms, wall_ms,
        {{"cells", std::to_string(cells)},
         {"model_ms", std::to_string(model_ms)},
         {"native_ms", std::to_string(native_ms)},
         {"interseq_ms", std::to_string(inter_ms)},
         {"gcups_model", std::to_string(gcups(model_ms))},
         {"gcups_native", std::to_string(gcups(native_ms))},
         {"gcups_intersequence", std::to_string(gcups(inter_ms))},
         {"native_speedup",
          std::to_string(model_ms / native_ms)},
         {"interseq_speedup_vs_striped",
          std::to_string(native_ms / inter_ms)},
         {"interseq_cutover",
          std::to_string(align::interSequenceCutover())},
         {"gcups_by_subject_length", buckets},
         {"native_backend",
          "\"" + std::string(align::backendName(backend)) + "\""}},
        point_ms);
}

} // namespace

int
main(int argc, char **argv)
{
    registerNativeBenchmarks();
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    runModelVsNativeGcups();
    return 0;
}
