/**
 * @file
 * Native-speed microbenchmarks of the aligners (google-benchmark):
 * the Section-I claim that the heuristics are an order of
 * magnitude faster than rigorous Smith-Waterman, measured on real
 * wall-clock rather than in simulation.
 */

#include <benchmark/benchmark.h>

#include "align/blast.hh"
#include "align/fasta.hh"
#include "align/smith_waterman.hh"
#include "align/ssearch.hh"
#include "align/sw_simd.hh"
#include "align/sw_striped.hh"
#include "bio/scoring.hh"
#include "bio/synthetic.hh"

namespace
{

using namespace bioarch;

const bio::ScoringMatrix &kMat = bio::blosum62();
const bio::GapPenalties kGaps{};

const bio::Sequence &
query()
{
    static const bio::Sequence q = bio::makeDefaultQuery();
    return q;
}

const bio::SequenceDatabase &
database()
{
    static const bio::SequenceDatabase db =
        bio::makeDefaultDatabase(60);
    return db;
}

void
BM_SmithWatermanScan(benchmark::State &state)
{
    std::uint64_t residues = 0;
    for (auto _ : state) {
        int best = 0;
        for (const bio::Sequence &s : database()) {
            best = std::max(
                best,
                align::smithWatermanScore(query(), s, kMat, kGaps)
                    .score);
            residues += s.length();
        }
        benchmark::DoNotOptimize(best);
    }
    state.counters["Mcells/s"] = benchmark::Counter(
        static_cast<double>(residues * query().length()) / 1e6,
        benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SmithWatermanScan)->Unit(benchmark::kMillisecond);

void
BM_SsearchScan(benchmark::State &state)
{
    const align::QueryProfile profile(query(), kMat);
    std::uint64_t residues = 0;
    for (auto _ : state) {
        int best = 0;
        for (const bio::Sequence &s : database()) {
            best = std::max(
                best, align::ssearchScan(profile, s, kGaps).score);
            residues += s.length();
        }
        benchmark::DoNotOptimize(best);
    }
    state.counters["Mcells/s"] = benchmark::Counter(
        static_cast<double>(residues * query().length()) / 1e6,
        benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SsearchScan)->Unit(benchmark::kMillisecond);

template <int N>
void
BM_SwSimdScan(benchmark::State &state)
{
    const align::VectorProfile<N> profile(query(), kMat);
    std::uint64_t residues = 0;
    for (auto _ : state) {
        int best = 0;
        for (const bio::Sequence &s : database()) {
            best = std::max(
                best,
                align::swSimdScan<N>(profile, s, kGaps).score);
            residues += s.length();
        }
        benchmark::DoNotOptimize(best);
    }
    state.counters["Mcells/s"] = benchmark::Counter(
        static_cast<double>(residues * query().length()) / 1e6,
        benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SwSimdScan<8>)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SwSimdScan<16>)->Unit(benchmark::kMillisecond);

template <int N>
void
BM_SwStripedScan(benchmark::State &state)
{
    const align::StripedProfile<N> profile(query(), kMat);
    std::uint64_t residues = 0;
    for (auto _ : state) {
        int best = 0;
        for (const bio::Sequence &s : database()) {
            best = std::max(
                best,
                align::swStripedScan<N>(profile, s, kGaps).score);
            residues += s.length();
        }
        benchmark::DoNotOptimize(best);
    }
    state.counters["Mcells/s"] = benchmark::Counter(
        static_cast<double>(residues * query().length()) / 1e6,
        benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SwStripedScan<8>)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SwStripedScan<16>)->Unit(benchmark::kMillisecond);

void
BM_FastaSearch(benchmark::State &state)
{
    for (auto _ : state) {
        const align::SearchResults res =
            align::fastaSearch(query(), database(), kMat, kGaps);
        benchmark::DoNotOptimize(res.hits.size());
    }
}
BENCHMARK(BM_FastaSearch)->Unit(benchmark::kMillisecond);

void
BM_BlastSearch(benchmark::State &state)
{
    for (auto _ : state) {
        const align::SearchResults res =
            align::blastSearch(query(), database(), kMat, kGaps);
        benchmark::DoNotOptimize(res.hits.size());
    }
}
BENCHMARK(BM_BlastSearch)->Unit(benchmark::kMillisecond);

void
BM_BlastNeighborhoodBuild(benchmark::State &state)
{
    const align::BlastParams params;
    for (auto _ : state) {
        const align::NeighborhoodIndex index(query(), kMat, params);
        benchmark::DoNotOptimize(index.numEntries());
    }
}
BENCHMARK(BM_BlastNeighborhoodBuild)->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
