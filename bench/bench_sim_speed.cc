/**
 * @file
 * Simulator-throughput harness: simulated Minst/s per
 * {workload x Me1/Me4 x 8-way}, single-threaded on purpose — this
 * measures the *inner loop* the sweep engine fans out, not the
 * fan-out (bench_serve_throughput and the figure harnesses cover
 * that). Me4's infinite L2 keeps the machine busy; Me1's 300-cycle
 * memory misses park it — exactly the regime the idle-cycle
 * fast-forward targets — so the two columns bound the speedup.
 *
 * The JSON footer carries minst_per_sec (aggregate) plus the Me1
 * and Me4 aggregates so archived BENCH_*.json files track simulator
 * throughput release over release.
 */

#include <chrono>
#include <iomanip>

#include "bench_common.hh"

int
main()
{
    using namespace bioarch;
    using Clock = std::chrono::steady_clock;

    bench::banner(
        "bench_sim_speed — simulator throughput (Minst/s)",
        "n/a (simulator engineering, not a paper figure)");

    const sim::CoreConfig core = sim::core8Way();
    const std::array<sim::MemoryConfig, 2> memories = {
        sim::memoryMe1(), sim::memoryMe4()};

    std::cout << "#\n# "
              << std::setw(10) << std::left << "workload"
              << std::setw(7) << "memory"
              << std::right << std::setw(14) << "instructions"
              << std::setw(12) << "cycles"
              << std::setw(10) << "ms"
              << std::setw(10) << "Minst/s" << "\n";

    std::vector<double> point_ms;
    std::array<double, 2> mem_insts{};
    std::array<double, 2> mem_secs{};
    double wall_ms = 0.0;
    std::uint64_t total_insts = 0;

    const Clock::time_point start = Clock::now();
    for (const kernels::Workload w : kernels::allWorkloads) {
        const trace::Trace &tr = bench::suite().trace(w);
        for (std::size_t m = 0; m < memories.size(); ++m) {
            sim::SimConfig cfg;
            cfg.core = core;
            cfg.memory = memories[m];
            const Clock::time_point t0 = Clock::now();
            const sim::SimStats stats = core::simulate(tr, cfg);
            const double ms =
                std::chrono::duration<double, std::milli>(
                    Clock::now() - t0)
                    .count();
            point_ms.push_back(ms);
            mem_insts[m] +=
                static_cast<double>(stats.instructions);
            mem_secs[m] += ms / 1000.0;
            total_insts += stats.instructions;

            std::cout << "# " << std::setw(10) << std::left
                      << kernels::workloadName(w) << std::setw(7)
                      << memories[m].name << std::right
                      << std::fixed << std::setprecision(0)
                      << std::setw(14) << stats.instructions
                      << std::setw(12) << stats.cycles
                      << std::setprecision(2) << std::setw(10)
                      << ms << std::setw(10)
                      << (ms <= 0.0
                              ? 0.0
                              : static_cast<double>(
                                    stats.instructions)
                                  / 1e6 / (ms / 1000.0))
                      << "\n";
        }
    }
    wall_ms = std::chrono::duration<double, std::milli>(
                  Clock::now() - start)
                  .count();

    double cpu_ms = 0.0;
    for (const double ms : point_ms)
        cpu_ms += ms;
    const auto minst = [](double insts, double secs) {
        return secs <= 0.0 ? 0.0 : insts / 1e6 / secs;
    };
    const auto fmt = [](double v) {
        std::ostringstream s;
        s << std::fixed << std::setprecision(3) << v;
        return s.str();
    };
    bench::printJsonFooter(
        "bench_sim_speed", 1, point_ms.size(), wall_ms, cpu_ms,
        {{"core", "\"" + core.name + "\""},
         {"total_instructions", std::to_string(total_insts)},
         {"minst_per_sec",
          fmt(minst(mem_insts[0] + mem_insts[1],
                    mem_secs[0] + mem_secs[1]))},
         {"minst_per_sec_me1", fmt(minst(mem_insts[0], mem_secs[0]))},
         {"minst_per_sec_me4", fmt(minst(mem_insts[1], mem_secs[1]))}},
        point_ms);
    return 0;
}
