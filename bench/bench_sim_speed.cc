/**
 * @file
 * Simulator-throughput harness: simulated Minst/s per
 * {workload x Me1/Me4 x 8-way}, single-threaded on purpose — this
 * measures the *inner loop* the sweep engine fans out, not the
 * fan-out (bench_serve_throughput and the figure harnesses cover
 * that). Me4's infinite L2 keeps the machine busy; Me1's 300-cycle
 * memory misses park it — exactly the regime the idle-cycle
 * fast-forward targets — so the two columns bound the speedup.
 *
 * Every point then runs a second, *sampled* arm (sim::sampleTrace,
 * same machine) as an A/B against its own full run: the footer's
 * sampled_speedup and max_*_error keys are what CI gates on
 * (speedup >= 5, error <= 2% IPC), and the per-point table shows
 * where the estimate lands. The sampled arm's period scales per
 * trace (~50 windows each) and it uses every available core —
 * parallel chunk fan-out is the sampler's design point, so on a
 * single-core host the arm degrades to the serial single-chunk
 * walk and the speedup is bounded by the functional-warming rate
 * (~3x aggregate; see EXPERIMENTS.md for the caveat).
 *
 * The JSON footer carries minst_per_sec (aggregate) plus the Me1
 * and Me4 aggregates so archived BENCH_*.json files track simulator
 * throughput release over release, the sampled-arm speedup/error
 * keys, and per-workload trace memory (trace::Trace::memoryBytes).
 */

#include <algorithm>
#include <chrono>
#include <iomanip>
#include <thread>

#include "bench_common.hh"
#include "sim/sample.hh"

int
main()
{
    using namespace bioarch;
    using Clock = std::chrono::steady_clock;

    bench::banner(
        "bench_sim_speed — simulator throughput (Minst/s)",
        "n/a (simulator engineering, not a paper figure)");

    const sim::CoreConfig core = sim::core8Way();
    const std::array<sim::MemoryConfig, 2> memories = {
        sim::memoryMe1(), sim::memoryMe4()};
    const unsigned sample_jobs = std::max(
        1u, std::min(8u, std::thread::hardware_concurrency()));
    const std::uint64_t sample_window = 10'000;
    const std::uint64_t sample_target_windows = 50;
    // Per-trace sampled-arm config: ~50 windows of 10k
    // instructions each. With >1 core, fan 8-window chunks across
    // the pool with full-prefix warmup (the last chunk doubles as
    // the exact functional coverage stream); serially, the default
    // single chunk walks the trace once, which is the cheapest
    // exact shape.
    const auto sampleFor = [&](const trace::Trace &tr) {
        sim::SampleConfig s;
        s.windowInsts = sample_window;
        s.periodInsts = std::max<std::uint64_t>(
            s.windowInsts,
            (tr.size() + sample_target_windows - 1)
                / sample_target_windows);
        s.jobs = sample_jobs;
        if (sample_jobs > 1) {
            s.chunkWindows = 8;
            s.warmupInsts = std::uint64_t{1} << 60; // full prefix
        }
        return s;
    };

    std::cout << "#\n# "
              << std::setw(10) << std::left << "workload"
              << std::setw(7) << "memory"
              << std::right << std::setw(14) << "instructions"
              << std::setw(12) << "cycles"
              << std::setw(10) << "ms"
              << std::setw(10) << "Minst/s"
              << std::setw(11) << "smpl-ms"
              << std::setw(9) << "speedup"
              << std::setw(9) << "ipcerr%" << "\n";

    std::vector<double> point_ms;
    std::array<double, 2> mem_insts{};
    std::array<double, 2> mem_secs{};
    double wall_ms = 0.0;
    std::uint64_t total_insts = 0;
    double full_ms_total = 0.0;
    double sampled_ms_total = 0.0;
    double max_ipc_err = 0.0;
    double max_dl1_err = 0.0;
    double max_l2_err = 0.0;
    double max_trauma_err = 0.0;
    std::vector<std::pair<std::string, std::uint64_t>> trace_mem;

    const Clock::time_point start = Clock::now();
    for (const kernels::Workload w : kernels::allWorkloads) {
        const trace::Trace &tr = bench::suite().trace(w);
        trace_mem.emplace_back(std::string(kernels::workloadName(w)),
                               tr.memoryBytes());
        for (std::size_t m = 0; m < memories.size(); ++m) {
            sim::SimConfig cfg;
            cfg.core = core;
            cfg.memory = memories[m];
            const Clock::time_point t0 = Clock::now();
            const sim::SimStats stats = core::simulate(tr, cfg);
            const double ms =
                std::chrono::duration<double, std::milli>(
                    Clock::now() - t0)
                    .count();
            point_ms.push_back(ms);
            mem_insts[m] +=
                static_cast<double>(stats.instructions);
            mem_secs[m] += ms / 1000.0;
            total_insts += stats.instructions;
            full_ms_total += ms;

            const Clock::time_point t1 = Clock::now();
            const sim::SampledStats sampled =
                sim::sampleTrace(tr, cfg, sampleFor(tr));
            const double sampled_ms =
                std::chrono::duration<double, std::milli>(
                    Clock::now() - t1)
                    .count();
            sampled_ms_total += sampled_ms;
            const sim::SampleError err =
                sim::compareSampled(sampled, stats);
            max_ipc_err = std::max(max_ipc_err, err.ipcPct);
            max_dl1_err = std::max(max_dl1_err, err.dl1MissRatePct);
            max_l2_err = std::max(max_l2_err, err.l2MissRatePct);
            max_trauma_err =
                std::max(max_trauma_err, err.traumaSharePts);

            std::cout << "# " << std::setw(10) << std::left
                      << kernels::workloadName(w) << std::setw(7)
                      << memories[m].name << std::right
                      << std::fixed << std::setprecision(0)
                      << std::setw(14) << stats.instructions
                      << std::setw(12) << stats.cycles
                      << std::setprecision(2) << std::setw(10)
                      << ms << std::setw(10)
                      << (ms <= 0.0
                              ? 0.0
                              : static_cast<double>(
                                    stats.instructions)
                                  / 1e6 / (ms / 1000.0))
                      << std::setw(11) << sampled_ms
                      << std::setw(9)
                      << (sampled_ms <= 0.0 ? 0.0
                                            : ms / sampled_ms)
                      << std::setw(9) << err.ipcPct << "\n";
        }
    }
    wall_ms = std::chrono::duration<double, std::milli>(
                  Clock::now() - start)
                  .count();

    double cpu_ms = 0.0;
    for (const double ms : point_ms)
        cpu_ms += ms;
    const auto minst = [](double insts, double secs) {
        return secs <= 0.0 ? 0.0 : insts / 1e6 / secs;
    };
    const auto fmt = [](double v) {
        std::ostringstream s;
        s << std::fixed << std::setprecision(3) << v;
        return s.str();
    };
    std::ostringstream trace_bytes;
    std::uint64_t trace_bytes_total = 0;
    trace_bytes << "{";
    for (std::size_t i = 0; i < trace_mem.size(); ++i) {
        trace_bytes << (i ? "," : "") << "\"" << trace_mem[i].first
                    << "\":" << trace_mem[i].second;
        trace_bytes_total += trace_mem[i].second;
    }
    trace_bytes << "}";
    // Effective sampled throughput: the instructions the sampled
    // runs *stand for* (the full traces, both arms) per second of
    // sampled wall clock — directly comparable to minst_per_sec.
    const double sampled_minst = minst(
        static_cast<double>(total_insts), sampled_ms_total / 1000.0);
    bench::printJsonFooter(
        "bench_sim_speed", 1, point_ms.size(), wall_ms, cpu_ms,
        {{"core", "\"" + core.name + "\""},
         {"total_instructions", std::to_string(total_insts)},
         {"minst_per_sec",
          fmt(minst(mem_insts[0] + mem_insts[1],
                    mem_secs[0] + mem_secs[1]))},
         {"minst_per_sec_me1", fmt(minst(mem_insts[0], mem_secs[0]))},
         {"minst_per_sec_me4", fmt(minst(mem_insts[1], mem_secs[1]))},
         {"sample_window", std::to_string(sample_window)},
         {"sample_windows_target",
          std::to_string(sample_target_windows)},
         {"sample_jobs", std::to_string(sample_jobs)},
         {"sampled_speedup",
          fmt(sampled_ms_total <= 0.0
                  ? 0.0
                  : full_ms_total / sampled_ms_total)},
         {"sampled_minst_per_sec", fmt(sampled_minst)},
         {"max_ipc_error_pct", fmt(max_ipc_err)},
         {"max_dl1_error_pct", fmt(max_dl1_err)},
         {"max_l2_error_pct", fmt(max_l2_err)},
         {"max_trauma_share_err_pts", fmt(max_trauma_err)},
         {"trace_bytes", trace_bytes.str()},
         {"trace_bytes_total", std::to_string(trace_bytes_total)}},
        point_ms);
    return 0;
}
