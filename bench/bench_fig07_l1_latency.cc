/**
 * @file
 * Fig. 7: IPC versus L1 hit latency (1-10 cycles; 32K/32K/1M,
 * 4-way core).
 */

#include "bench_common.hh"

using namespace bioarch;

int
main()
{
    bench::banner(
        "Fig. 7 - IPC vs L1 hit latency",
        "the SIMD codes are the most latency-sensitive (compute "
        "bound: every load feeds the dependency chain)");

    const int lats[] = {1, 2, 4, 6, 8, 10};

    core::Table ipc({"L1 latency", "SSEARCH34", "SW_vmx128",
                     "SW_vmx256", "FASTA34", "BLAST"});
    std::array<double, kernels::numWorkloads> first{};
    std::array<double, kernels::numWorkloads> last{};

    for (const int lat : lats) {
        auto &row = ipc.row().add(lat);
        for (const kernels::Workload w : kernels::allWorkloads) {
            sim::SimConfig cfg;
            cfg.memory.dl1.latency = lat;
            cfg.memory.il1.latency = 1; // data-side experiment
            const sim::SimStats stats =
                core::simulate(bench::suite().trace(w), cfg);
            row.add(stats.ipc(), 3);
            if (lat == lats[0])
                first[static_cast<std::size_t>(w)] = stats.ipc();
            last[static_cast<std::size_t>(w)] = stats.ipc();
        }
    }
    ipc.print(std::cout);

    std::cout << "\nIPC loss from latency 1 to 10:\n";
    for (const kernels::Workload w : kernels::allWorkloads) {
        const std::size_t i = static_cast<std::size_t>(w);
        std::cout << "  " << kernels::workloadName(w) << ": "
                  << static_cast<int>(
                         100.0 * (1.0 - last[i] / first[i]))
                  << "%\n";
    }
    return 0;
}
