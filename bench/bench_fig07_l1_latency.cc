/**
 * @file
 * Fig. 7: IPC versus L1 hit latency (1-10 cycles; 32K/32K/1M,
 * 4-way core).
 */

#include "bench_common.hh"

using namespace bioarch;

int
main()
{
    bench::banner(
        "Fig. 7 - IPC vs L1 hit latency",
        "the SIMD codes are the most latency-sensitive (compute "
        "bound: every load feeds the dependency chain)");

    const int lats[] = {1, 2, 4, 6, 8, 10};

    std::vector<core::SweepPoint> points;
    for (const int lat : lats)
        for (const kernels::Workload w : kernels::allWorkloads) {
            core::SweepPoint p;
            p.workload = w;
            p.config.memory.dl1.latency = lat;
            p.config.memory.il1.latency = 1; // data-side experiment
            p.label = "lat" + std::to_string(lat);
            points.push_back(std::move(p));
        }
    const core::SweepResult sweep = bench::runSweep(points);

    core::Table ipc({"L1 latency", "SSEARCH34", "SW_vmx128",
                     "SW_vmx256", "FASTA34", "BLAST"});
    std::array<double, kernels::numWorkloads> first{};
    std::array<double, kernels::numWorkloads> last{};

    std::size_t i = 0;
    for (const int lat : lats) {
        auto &row = ipc.row().add(lat);
        for (int w = 0; w < kernels::numWorkloads; ++w) {
            const sim::SimStats &stats = sweep.stats(i++);
            row.add(stats.ipc(), 3);
            if (lat == lats[0])
                first[static_cast<std::size_t>(w)] = stats.ipc();
            last[static_cast<std::size_t>(w)] = stats.ipc();
        }
    }
    ipc.print(std::cout);

    std::cout << "\nIPC loss from latency 1 to 10:\n";
    for (const kernels::Workload w : kernels::allWorkloads) {
        const std::size_t i_w = static_cast<std::size_t>(w);
        std::cout << "  " << kernels::workloadName(w) << ": "
                  << static_cast<int>(
                         100.0 * (1.0 - last[i_w] / first[i_w]))
                  << "%\n";
    }

    bench::printSweepJson("fig07_l1_latency", sweep);
    return 0;
}
