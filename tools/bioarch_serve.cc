/**
 * @file
 * bioarch-serve: load generator for the batched query-serving
 * engine (src/serve). Replays a deterministic synthetic request
 * stream — queries drawn from the Table II set, application kinds
 * from the paper's five workloads — against a synthetic SwissProt
 * stand-in, and prints a latency/throughput report.
 *
 * Examples:
 *   bioarch-serve --requests 64 --jobs 8
 *   bioarch-serve --requests 128 --batch 16 --shards 8 --top-k 5
 *   bioarch-serve --workload blast --db-seqs 500 --csv
 */

#include <cctype>
#include <cstdlib>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>

#include "bio/synthetic.hh"
#include "core/report.hh"
#include "serve/engine.hh"

using namespace bioarch;

namespace
{

void
usage(std::ostream &out)
{
    out << "usage: bioarch-serve [options]\n"
           "\n"
           "stream:\n"
           "  --requests N      requests to replay (default 64)\n"
           "  --workload NAME   restrict the stream to one\n"
           "                    application: ssearch34 | sw_vmx128\n"
           "                    | sw_vmx256 | fasta34 | blast\n"
           "                    (default: uniform mix of all five)\n"
           "  --seed S          stream RNG seed\n"
           "\n"
           "engine:\n"
           "  --batch N         requests per batch (default 8)\n"
           "  --shards N        database shards (default 4)\n"
           "  --jobs N          worker threads (default:\n"
           "                    BIOARCH_JOBS, else all hardware\n"
           "                    threads)\n"
           "  --top-k K         hits per response (default 10)\n"
           "  --backend NAME    Smith-Waterman kernel backend:\n"
           "                    auto | portable | sse2 | avx2 |\n"
           "                    neon | model (default: the\n"
           "                    BIOARCH_SIMD_BACKEND environment\n"
           "                    variable, else the widest native\n"
           "                    backend this CPU supports; 'model'\n"
           "                    forces the instruction-accurate\n"
           "                    vector model)\n"
           "\n"
           "working set:\n"
           "  --db-seqs N       database sequences (default 200)\n"
           "\n"
           "output:\n"
           "  --csv             machine-readable output\n"
           "  --help            this text\n";
}

std::optional<kernels::Workload>
parseWorkload(const std::string &name)
{
    for (const kernels::Workload w : kernels::allWorkloads) {
        std::string n(kernels::workloadName(w));
        for (char &c : n)
            c = static_cast<char>(std::tolower(c));
        if (n == name)
            return w;
    }
    return std::nullopt;
}

} // namespace

int
main(int argc, char **argv)
{
    serve::StreamSpec stream;
    serve::EngineConfig cfg;
    int db_seqs = 200;
    bool csv = false;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&]() -> std::string {
            if (i + 1 >= argc) {
                std::cerr << "missing value for " << arg << "\n";
                std::exit(2);
            }
            return argv[++i];
        };
        auto positive = [&](const std::string &v) -> int {
            const int n = std::atoi(v.c_str());
            if (n <= 0) {
                std::cerr << arg << " must be positive\n";
                std::exit(2);
            }
            return n;
        };
        if (arg == "--help" || arg == "-h") {
            usage(std::cout);
            return 0;
        } else if (arg == "--requests") {
            stream.requests =
                static_cast<std::size_t>(positive(value()));
        } else if (arg == "--workload") {
            const auto w = parseWorkload(value());
            if (!w) {
                std::cerr << "unknown workload (--help)\n";
                return 2;
            }
            stream.kinds = {*w};
        } else if (arg == "--seed") {
            stream.seed = std::strtoull(value().c_str(), nullptr, 0);
        } else if (arg == "--batch") {
            cfg.batch = static_cast<std::size_t>(positive(value()));
        } else if (arg == "--shards") {
            cfg.shards = static_cast<std::size_t>(positive(value()));
        } else if (arg == "--jobs") {
            cfg.jobs = static_cast<unsigned>(positive(value()));
        } else if (arg == "--top-k") {
            cfg.topK = static_cast<std::size_t>(positive(value()));
        } else if (arg == "--backend") {
            const auto b = align::parseBackend(value());
            if (!b) {
                std::cerr << "unknown backend (--help)\n";
                return 2;
            }
            cfg.backend = *b;
        } else if (arg == "--db-seqs") {
            db_seqs = positive(value());
        } else if (arg == "--csv") {
            csv = true;
        } else {
            std::cerr << "unknown option " << arg << " (--help)\n";
            return 2;
        }
    }

    const std::vector<bio::Sequence> pool = bio::makeQuerySet();
    const bio::SequenceDatabase db =
        bio::makeDefaultDatabase(db_seqs);
    const std::vector<serve::Request> requests =
        serve::makeRequestStream(stream, pool);

    serve::Engine engine(db, cfg);
    const serve::StreamReport report =
        engine.serveStream(requests);
    const serve::LatencySummary lat = report.latency.summary();

    if (!csv) {
        std::cout << "# bioarch-serve: " << requests.size()
                  << " requests vs " << db.size()
                  << " sequences / " << db.totalResidues()
                  << " residues\n";
    }

    core::Table summary({"metric", "value"});
    summary.row().add("requests").add(
        static_cast<std::uint64_t>(report.responses.size()));
    summary.row().add("batches").add(
        static_cast<std::uint64_t>(report.batches));
    summary.row().add("batch size").add(
        static_cast<std::uint64_t>(report.batchSize));
    summary.row().add("shards").add(
        static_cast<std::uint64_t>(report.shards));
    summary.row().add("jobs").add(
        static_cast<int>(report.jobs));
    summary.row().add("backend").add(
        std::string(align::backendName(cfg.backend)));
    summary.row().add("wall ms").add(report.wallMs, 2);
    summary.row().add("requests/sec").add(
        report.requestsPerSec(), 1);
    summary.row().add("p50 latency ms").add(lat.p50Us / 1000.0, 3);
    summary.row().add("p95 latency ms").add(lat.p95Us / 1000.0, 3);
    summary.row().add("p99 latency ms").add(lat.p99Us / 1000.0, 3);
    summary.row().add("max latency ms").add(lat.maxUs / 1000.0, 3);
    summary.row().add("mean latency ms").add(
        lat.meanUs / 1000.0, 3);
    summary.row().add("scan cpu ms").add(report.cpuMs, 2);
    summary.row().add("parallel efficiency").add(
        report.parallelEfficiency(), 2);
    summary.row().add("total cells").add(report.totalCells);

    // Per-application slice of the stream.
    core::Table mix({"workload", "requests", "mean latency ms",
                     "mean hits"});
    for (const kernels::Workload w : kernels::allWorkloads) {
        std::uint64_t n = 0;
        std::uint64_t hits = 0;
        double latency_us = 0.0;
        for (const serve::Response &r : report.responses) {
            if (r.kind != w)
                continue;
            ++n;
            hits += r.hits.size();
            latency_us += r.latencyUs();
        }
        if (n == 0)
            continue;
        mix.row()
            .add(std::string(kernels::workloadName(w)))
            .add(n)
            .add(latency_us / static_cast<double>(n) / 1000.0, 3)
            .add(static_cast<double>(hits)
                     / static_cast<double>(n),
                 1);
    }

    core::Table hist({"latency bucket", "requests"});
    for (const serve::LatencyBucket &b :
         report.latency.histogram()) {
        std::ostringstream label;
        label.setf(std::ios::fixed);
        label.precision(3);
        label << "[" << b.loUs / 1000.0 << ", " << b.hiUs / 1000.0
              << ") ms";
        hist.row().add(label.str()).add(
            static_cast<std::uint64_t>(b.count));
    }

    if (csv) {
        summary.printCsv(std::cout);
        mix.printCsv(std::cout);
        hist.printCsv(std::cout);
    } else {
        summary.print(std::cout);
        std::cout << "\nper-application mix:\n";
        mix.print(std::cout);
        std::cout << "\nlatency histogram:\n";
        hist.print(std::cout);
    }
    return 0;
}
