/**
 * @file
 * bioarch-serve: load generator for the batched query-serving
 * engine (src/serve). Replays a deterministic synthetic request
 * stream — queries drawn from the Table II set, application kinds
 * from the paper's five workloads — against a synthetic SwissProt
 * stand-in, and prints a latency/throughput report.
 *
 * Two modes:
 *  - closed loop (default): replay --requests through
 *    Engine::serveStream back to back;
 *  - open loop (--qps): a seeded deterministic arrival schedule
 *    (exponential inter-arrivals) drives the online ServeLoop with
 *    per-request deadlines, admission control and load shedding,
 *    and the run ends with a machine-readable counter footer.
 *
 * Examples:
 *   bioarch-serve --requests 64 --jobs 8
 *   bioarch-serve --requests 128 --batch 16 --shards 8 --top-k 5
 *   bioarch-serve --workload blast --db-seqs 500 --csv
 *   bioarch-serve --qps 200 --duration-s 2 --deadline-ms 50
 *   bioarch-serve --qps 400 --metrics-out /tmp/metrics.json
 */

#include <cctype>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <thread>

#include "bio/dna_workload.hh"
#include "bio/random.hh"
#include "bio/synthetic.hh"
#include "core/percentile.hh"
#include "core/report.hh"
#include "index/epoch.hh"
#include "index/seed_index.hh"
#include "obs/snapshot.hh"
#include "serve/engine.hh"
#include "serve/loop.hh"
#include "serve/router.hh"

using namespace bioarch;

namespace
{

void
usage(std::ostream &out)
{
    out << "usage: bioarch-serve [options]\n"
           "\n"
           "stream:\n"
           "  --requests N      requests to replay (default 64)\n"
           "  --workload NAME   restrict the stream to one\n"
           "                    application: ssearch34 | sw_vmx128\n"
           "                    | sw_vmx256 | fasta34 | blast |\n"
           "                    blastn (default: uniform mix of\n"
           "                    the five protein workloads; blastn\n"
           "                    swaps in the synthetic long-read\n"
           "                    nucleotide database)\n"
           "  --report-alignments\n"
           "                    two-phase serving: after the\n"
           "                    ranked scan, trace back a CIGAR\n"
           "                    alignment for every reported hit\n"
           "  --seed S          stream RNG seed\n"
           "\n"
           "engine:\n"
           "  --batch N         requests per batch (default 8)\n"
           "  --shards N        database shards (default 4)\n"
           "  --jobs N          worker threads (default:\n"
           "                    BIOARCH_JOBS, else all hardware\n"
           "                    threads)\n"
           "  --top-k K         hits per response (default 10)\n"
           "  --backend NAME    Smith-Waterman kernel backend:\n"
           "                    auto | portable | sse2 | avx2 |\n"
           "                    neon | model (default: the\n"
           "                    BIOARCH_SIMD_BACKEND environment\n"
           "                    variable, else the widest native\n"
           "                    backend this CPU supports; 'model'\n"
           "                    forces the instruction-accurate\n"
           "                    vector model)\n"
           "\n"
           "working set:\n"
           "  --db-seqs N       database sequences (default 200)\n"
           "  --zipf            Zipf (power-law) background\n"
           "                    lengths instead of the\n"
           "                    SwissProt-like bell\n"
           "\n"
           "indexed serving:\n"
           "  --index           build a seed index over the\n"
           "                    database and route blast-kind\n"
           "                    requests through probe ->\n"
           "                    candidate rescore\n"
           "  --blast-t T       BLAST neighborhood threshold\n"
           "                    (default 11; the indexed tier's\n"
           "                    reference configuration is 16 —\n"
           "                    lower values mark most of the\n"
           "                    synthetic database as candidates\n"
           "                    and the probe falls back to full\n"
           "                    scans)\n"
           "  --hot-reload      (open loop) swap in a fresh\n"
           "                    database epoch halfway through the\n"
           "                    arrivals, while serving\n"
           "\n"
           "open loop (online serving):\n"
           "  --qps Q           offered load (requests/sec);\n"
           "                    enables the online ServeLoop with\n"
           "                    seeded exponential arrivals\n"
           "  --duration-s S    arrival window (default 2)\n"
           "  --deadline-ms D   per-request deadline, counted from\n"
           "                    the scheduled arrival (default 0 =\n"
           "                    none)\n"
           "  --queue-cap N     admission queue bound (default 64)\n"
           "\n"
           "fleet (open loop):\n"
           "  --replicas N      engine replicas behind the\n"
           "                    scatter-gather router (default 1;\n"
           "                    each replica has its own thread\n"
           "                    pool and epoch pin)\n"
           "  --cache-mb M      result-cache capacity in MiB\n"
           "                    (default 0 = cache off)\n"
           "  --tenants SPEC    comma-separated per-tenant specs\n"
           "                    qps:burst:weight:share — token-\n"
           "                    bucket rate (0 = unlimited) and\n"
           "                    burst, WDRR weight, and the\n"
           "                    fraction of offered arrivals this\n"
           "                    tenant generates (shares are\n"
           "                    normalized). Tenant ids are the\n"
           "                    list positions. Example:\n"
           "                    --tenants 100:10:3:0.5,50:5:1:0.25,\n"
           "                    50:5:1:0.25\n"
           "\n"
           "output:\n"
           "  --csv             machine-readable output\n"
           "  --metrics-out F   write the JSON metrics snapshot to\n"
           "                    F (open loop also writes F.mid\n"
           "                    halfway through the arrivals)\n"
           "  --metrics-prom F  write the Prometheus text\n"
           "                    exposition to F\n"
           "  --help            this text\n";
}

std::optional<kernels::Workload>
parseWorkload(const std::string &name)
{
    for (const kernels::Workload w : kernels::allWorkloads) {
        std::string n(kernels::workloadName(w));
        for (char &c : n)
            c = static_cast<char>(std::tolower(c));
        if (n == name)
            return w;
    }
    // Served-only kind: not in allWorkloads (the simulator's five)
    // but a first-class request kind for the serving tier.
    if (name == "blastn")
        return kernels::Workload::Blastn;
    return std::nullopt;
}

/** Refresh pool mirrors, then dump the requested snapshot files. */
void
writeMetricsFiles(serve::BatchServer &engine,
                  const std::string &json, const std::string &prom)
{
    engine.refreshPoolMetrics();
    if (!json.empty()) {
        std::ofstream out(json);
        obs::writeJson(engine.metrics(), out);
    }
    if (!prom.empty()) {
        std::ofstream out(prom);
        obs::writePrometheus(engine.metrics(), out);
    }
}

/** One --tenants entry: quota spec + offered-traffic share. */
struct TenantSpec
{
    double qps = 0.0;
    double burst = 1.0;
    double weight = 1.0;
    double share = 1.0;
};

/** Parse "qps:burst:weight:share,..." (exit 2 on malformed). */
std::vector<TenantSpec>
parseTenants(const std::string &spec)
{
    std::vector<TenantSpec> tenants;
    std::istringstream list(spec);
    std::string item;
    while (std::getline(list, item, ',')) {
        TenantSpec t;
        double *fields[4] = {&t.qps, &t.burst, &t.weight,
                             &t.share};
        std::istringstream parts(item);
        std::string field;
        std::size_t k = 0;
        while (std::getline(parts, field, ':') && k < 4)
            *fields[k++] = std::atof(field.c_str());
        if (k != 4 || t.burst <= 0.0 || t.weight <= 0.0
            || t.share <= 0.0) {
            std::cerr << "bad --tenants entry '" << item
                      << "' (want qps:burst:weight:share)\n";
            std::exit(2);
        }
        tenants.push_back(t);
    }
    if (tenants.empty()) {
        std::cerr << "--tenants: empty spec\n";
        std::exit(2);
    }
    return tenants;
}

/**
 * The deterministic part of the open-loop run: arrival offsets (us
 * from run start) with exponential inter-arrival gaps at @p qps,
 * derived only from the seed — never from the wall clock.
 */
std::vector<double>
arrivalSchedule(double qps, double duration_s, std::uint64_t seed)
{
    bio::Rng rng(seed ^ 0xA2217E9D5EedULL);
    std::vector<double> arrivals;
    const double mean_gap_us = 1e6 / qps;
    const double end_us = duration_s * 1e6;
    double t = 0.0;
    for (;;) {
        // Inverse-CDF exponential; uniform() < 1 keeps log finite.
        t += -std::log(1.0 - rng.uniform()) * mean_gap_us;
        if (t >= end_us)
            return arrivals;
        arrivals.push_back(t);
    }
}

int
runOpenLoop(const bio::SequenceDatabase &db,
            const std::vector<bio::Sequence> &pool,
            const serve::EngineConfig &cfg,
            const serve::StreamSpec &stream_spec, double qps,
            double duration_s, double deadline_ms,
            std::size_t queue_cap, const std::string &metrics_out,
            const std::string &metrics_prom, bool use_index,
            bool hot_reload, int db_seqs, bool zipf,
            std::size_t replicas, std::size_t cache_mb,
            const std::vector<TenantSpec> &tenants)
{
    const std::vector<double> arrivals =
        arrivalSchedule(qps, duration_s, stream_spec.seed);
    serve::StreamSpec spec = stream_spec;
    spec.requests = arrivals.size();
    std::vector<serve::Request> requests =
        serve::makeRequestStream(spec, pool);

    // Bill each arrival to a tenant by a seeded weighted draw over
    // the configured shares (deterministic, like the schedule).
    if (!tenants.empty()) {
        double total_share = 0.0;
        for (const TenantSpec &t : tenants)
            total_share += t.share;
        bio::Rng rng(stream_spec.seed ^ 0x7E2A27ULL);
        for (serve::Request &r : requests) {
            double draw = rng.uniform() * total_share;
            std::uint32_t id = 0;
            for (const TenantSpec &t : tenants) {
                draw -= t.share;
                if (draw < 0.0)
                    break;
                ++id;
            }
            r.tenant = std::min(
                id,
                static_cast<std::uint32_t>(tenants.size() - 1));
        }
    }

    // The open loop always fronts the replica router: with one
    // replica and the cache off it degenerates to a single
    // reloadable engine. --hot-reload slides a second epoch in
    // mid-run while the loop keeps dispatching.
    serve::RouterConfig rcfg;
    rcfg.replicas = replicas;
    rcfg.engine = cfg;
    rcfg.cache.capacityBytes = cache_mb * (1u << 20);
    serve::ReplicaRouter engine(
        index::makeEpoch(db, use_index, 1), rcfg);
    serve::LoopConfig lcfg;
    lcfg.queueCapacity = queue_cap;
    for (std::size_t i = 0; i < tenants.size(); ++i) {
        serve::TenantQuota quota;
        quota.tenant = static_cast<std::uint32_t>(i);
        quota.rateQps = tenants[i].qps;
        quota.burst = tenants[i].burst;
        quota.weight = tenants[i].weight;
        lcfg.tenants.push_back(quota);
    }
    serve::ServeLoop loop(engine, lcfg);
    const serve::Clock &clock = loop.clock();
    loop.start();

    // Replay the schedule against the wall clock. A deadline is
    // counted from the *scheduled* arrival, so falling behind the
    // schedule (overload) eats into the slack — that is what makes
    // the loop shed instead of building unbounded queues.
    for (std::size_t i = 0; i < arrivals.size(); ++i) {
        while (clock.nowUs() < arrivals[i])
            std::this_thread::sleep_for(
                std::chrono::microseconds(100));
        const double deadline = deadline_ms > 0.0
            ? arrivals[i] + deadline_ms * 1000.0
            : 0.0;
        const serve::Priority priority =
            static_cast<serve::Priority>(i % 3);
        (void)loop.submit(requests[i], priority, deadline);
        if (i + 1 == arrivals.size() / 2) {
            if (!metrics_out.empty())
                writeMetricsFiles(engine, metrics_out + ".mid",
                                  "");
            if (hot_reload) {
                const bool dna = stream_spec.kinds.size() == 1
                    && stream_spec.kinds.front()
                        == kernels::Workload::Blastn;
                bio::SequenceDatabase next;
                if (dna) {
                    bio::DnaWorkloadSpec dspec;
                    dspec.numReads =
                        static_cast<std::size_t>(db_seqs);
                    dspec.seed = 0xDBDBDBDC;
                    next = bio::makeDnaReadDatabase(dspec, pool);
                } else {
                    next = zipf ? bio::makeZipfDatabase(
                                      db_seqs, 0xDBDBDBDC)
                                : bio::makeDefaultDatabase(
                                      db_seqs, 0xDBDBDBDC);
                }
                engine.reload(
                    index::makeEpoch(std::move(next), use_index,
                                     2));
            }
        }
    }
    loop.drain();
    writeMetricsFiles(engine, metrics_out, metrics_prom);

    obs::Registry &m = engine.metrics();
    const auto counter = [&m](std::string_view name) {
        return m.counterValue(name);
    };
    const std::uint64_t offered = counter("loop_offered_total");
    const std::uint64_t served = counter("loop_served_total");
    const std::uint64_t shed_queue_full =
        counter("loop_shed_queue_full_total");
    const std::uint64_t shed_deadline =
        counter("loop_shed_deadline_total");
    const std::uint64_t shed_quota =
        counter("loop_shed_quota_total");
    const std::uint64_t shed_shutdown =
        counter("loop_shed_shutdown_total");
    const std::uint64_t deadline_expired =
        counter("loop_deadline_expired_total");
    const std::uint64_t dropped = counter("loop_dropped_total");

    std::vector<double> latencies;
    std::vector<double> queue_waits;
    std::vector<double> cached_latencies;
    for (const serve::LoopResult &r : loop.results()) {
        if (r.status != serve::LoopStatus::Served)
            continue;
        latencies.push_back(r.latencyUs());
        queue_waits.push_back(r.queueWaitUs());
        if (r.response.fromCache)
            cached_latencies.push_back(r.latencyUs());
    }
    const obs::HistogramSummary cache_hit_us =
        m.histogram("serve_cache_hit_us").summary();

    std::ostringstream footer;
    footer.setf(std::ios::fixed);
    footer.precision(3);
    footer << "{\"mode\":\"open_loop\",\"qps\":" << qps
           << ",\"duration_s\":" << duration_s
           << ",\"deadline_ms\":" << deadline_ms
           << ",\"queue_cap\":" << queue_cap
           << ",\"jobs\":" << engine.config().engine.jobs
           << ",\"offered\":" << offered
           << ",\"admitted\":" << counter("loop_admitted_total")
           << ",\"served\":" << served
           << ",\"shed_queue_full\":" << shed_queue_full
           << ",\"shed_deadline\":" << shed_deadline
           << ",\"shed_quota\":" << shed_quota
           << ",\"shed_shutdown\":" << shed_shutdown
           << ",\"shed_total\":"
           << shed_queue_full + shed_deadline + shed_quota
                  + shed_shutdown
           << ",\"deadline_expired\":" << deadline_expired
           << ",\"dropped\":" << dropped
           << ",\"replicas\":" << engine.replicas()
           << ",\"cache_mb\":" << cache_mb
           << ",\"cache_hits\":"
           << counter("serve_cache_hits_total")
           << ",\"cache_misses\":"
           << counter("serve_cache_misses_total")
           << ",\"cache_evictions\":"
           << counter("serve_cache_evictions_total")
           << ",\"cache_bytes\":"
           << m.gaugeValue("serve_cache_bytes")
           << ",\"cache_hit_p99_us\":" << cache_hit_us.p99
           << ",\"cached_served\":" << cached_latencies.size()
           << ",\"cached_p99_ms\":"
           << core::percentile(cached_latencies, 99.0) / 1000.0
           << ",\"index\":" << (use_index ? "true" : "false")
           << ",\"hot_reload\":"
           << (hot_reload ? "true" : "false")
           << ",\"db_epoch\":" << m.gaugeValue("db_epoch")
           << ",\"index_probes\":"
           << counter("index_probe_total")
           << ",\"index_candidates\":"
           << counter("index_candidates_total")
           << ",\"index_fallbacks\":"
           << counter("index_fallback_scan_total")
           << ",\"report_alignments\":"
           << (stream_spec.reportAlignments ? "true" : "false")
           << ",\"alignments\":"
           << counter("serve_alignments_total")
           << ",\"traceback_cells\":"
           << counter("traceback_cells_total")
           << ",\"tracebacks_skipped\":"
           << counter("serve_tracebacks_skipped_total")
           << ",\"traceback_p99_us\":"
           << m.histogram("serve_traceback_us").summary().p99
           << ",\"p50_ms\":"
           << core::percentile(latencies, 50.0) / 1000.0
           << ",\"p99_ms\":"
           << core::percentile(latencies, 99.0) / 1000.0
           << ",\"queue_wait_p50_ms\":"
           << core::percentile(queue_waits, 50.0) / 1000.0
           << ",\"queue_wait_p99_ms\":"
           << core::percentile(queue_waits, 99.0) / 1000.0;

    // Per-tenant slice + identity: the books must balance for
    // every tenant, not just in aggregate.
    bool tenant_identity_ok = true;
    const std::size_t num_tenants =
        tenants.empty() ? 1 : tenants.size();
    footer << ",\"tenants\":[";
    for (std::size_t t = 0; t < num_tenants; ++t) {
        const std::string label =
            "tenant=\"" + std::to_string(t) + "\"";
        const auto tcounter = [&m, &label](std::string_view name) {
            return m.counterValue(name, label);
        };
        const std::uint64_t t_offered =
            tcounter("serve_tenant_offered_total");
        const std::uint64_t t_served =
            tcounter("serve_tenant_served_total");
        const std::uint64_t t_shed =
            tcounter("serve_tenant_shed_total");
        const std::uint64_t t_deadline =
            tcounter("serve_tenant_deadline_expired_total");
        const std::uint64_t t_dropped =
            tcounter("serve_tenant_dropped_total");
        if (t_served + t_shed + t_deadline + t_dropped
            != t_offered)
            tenant_identity_ok = false;
        footer << (t == 0 ? "" : ",") << "{\"tenant\":" << t
               << ",\"offered\":" << t_offered
               << ",\"admitted\":"
               << tcounter("serve_tenant_admitted_total")
               << ",\"served\":" << t_served
               << ",\"shed\":" << t_shed
               << ",\"deadline_expired\":" << t_deadline
               << ",\"dropped\":" << t_dropped << "}";
    }
    footer << "],\"tenant_identity_ok\":"
           << (tenant_identity_ok ? "true" : "false") << "}";
    std::cout << footer.str() << "\n";

    // The loop's books must balance: every offered request ends in
    // exactly one terminal state — globally and per tenant.
    if (served + shed_queue_full + shed_deadline + shed_quota
            + shed_shutdown + deadline_expired + dropped
        != offered) {
        std::cerr << "counter identity violated\n";
        return 1;
    }
    if (!tenant_identity_ok) {
        std::cerr << "per-tenant counter identity violated\n";
        return 1;
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    serve::StreamSpec stream;
    serve::EngineConfig cfg;
    int db_seqs = 200;
    bool csv = false;
    bool zipf = false;
    bool use_index = false;
    bool hot_reload = false;
    double qps = 0.0;
    double duration_s = 2.0;
    double deadline_ms = 0.0;
    std::size_t queue_cap = 64;
    std::size_t replicas = 1;
    std::size_t cache_mb = 0;
    std::vector<TenantSpec> tenants;
    std::string metrics_out;
    std::string metrics_prom;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&]() -> std::string {
            if (i + 1 >= argc) {
                std::cerr << "missing value for " << arg << "\n";
                std::exit(2);
            }
            return argv[++i];
        };
        auto positive = [&](const std::string &v) -> int {
            const int n = std::atoi(v.c_str());
            if (n <= 0) {
                std::cerr << arg << " must be positive\n";
                std::exit(2);
            }
            return n;
        };
        if (arg == "--help" || arg == "-h") {
            usage(std::cout);
            return 0;
        } else if (arg == "--requests") {
            stream.requests =
                static_cast<std::size_t>(positive(value()));
        } else if (arg == "--workload") {
            const auto w = parseWorkload(value());
            if (!w) {
                std::cerr << "unknown workload (--help)\n";
                return 2;
            }
            stream.kinds = {*w};
        } else if (arg == "--report-alignments") {
            stream.reportAlignments = true;
        } else if (arg == "--seed") {
            stream.seed = std::strtoull(value().c_str(), nullptr, 0);
        } else if (arg == "--batch") {
            cfg.batch = static_cast<std::size_t>(positive(value()));
        } else if (arg == "--shards") {
            cfg.shards = static_cast<std::size_t>(positive(value()));
        } else if (arg == "--jobs") {
            cfg.jobs = static_cast<unsigned>(positive(value()));
        } else if (arg == "--top-k") {
            cfg.topK = static_cast<std::size_t>(positive(value()));
        } else if (arg == "--backend") {
            const auto b = align::parseBackend(value());
            if (!b) {
                std::cerr << "unknown backend (--help)\n";
                return 2;
            }
            cfg.backend = *b;
        } else if (arg == "--db-seqs") {
            db_seqs = positive(value());
        } else if (arg == "--zipf") {
            zipf = true;
        } else if (arg == "--index") {
            use_index = true;
        } else if (arg == "--blast-t") {
            cfg.blast.neighborThreshold = positive(value());
        } else if (arg == "--hot-reload") {
            hot_reload = true;
        } else if (arg == "--qps") {
            qps = std::atof(value().c_str());
            if (qps <= 0.0) {
                std::cerr << "--qps must be positive\n";
                return 2;
            }
        } else if (arg == "--duration-s") {
            duration_s = std::atof(value().c_str());
            if (duration_s <= 0.0) {
                std::cerr << "--duration-s must be positive\n";
                return 2;
            }
        } else if (arg == "--deadline-ms") {
            deadline_ms = std::atof(value().c_str());
            if (deadline_ms <= 0.0) {
                std::cerr << "--deadline-ms must be positive\n";
                return 2;
            }
        } else if (arg == "--queue-cap") {
            queue_cap =
                static_cast<std::size_t>(positive(value()));
        } else if (arg == "--replicas") {
            replicas =
                static_cast<std::size_t>(positive(value()));
        } else if (arg == "--cache-mb") {
            cache_mb =
                static_cast<std::size_t>(positive(value()));
        } else if (arg == "--tenants") {
            tenants = parseTenants(value());
        } else if (arg == "--metrics-out") {
            metrics_out = value();
        } else if (arg == "--metrics-prom") {
            metrics_prom = value();
        } else if (arg == "--csv") {
            csv = true;
        } else {
            std::cerr << "unknown option " << arg << " (--help)\n";
            return 2;
        }
    }

    // The blastn kind serves the synthetic long-read nucleotide
    // workload instead of the SwissProt stand-in.
    const bool dna = stream.kinds.size() == 1
        && stream.kinds.front() == kernels::Workload::Blastn;
    std::vector<bio::Sequence> pool;
    bio::SequenceDatabase db;
    if (dna) {
        if (use_index) {
            std::cerr << "--index is protein-only (not blastn)\n";
            return 2;
        }
        pool = bio::makeDnaQueryPool(8, 800, stream.seed);
        bio::DnaWorkloadSpec spec;
        spec.numReads = static_cast<std::size_t>(db_seqs);
        db = bio::makeDnaReadDatabase(spec, pool);
    } else {
        pool = bio::makeQuerySet();
        db = zipf ? bio::makeZipfDatabase(db_seqs)
                  : bio::makeDefaultDatabase(db_seqs);
    }

    if (qps > 0.0)
        return runOpenLoop(db, pool, cfg, stream, qps, duration_s,
                           deadline_ms, queue_cap, metrics_out,
                           metrics_prom, use_index, hot_reload,
                           db_seqs, zipf, replicas, cache_mb,
                           tenants);
    if (hot_reload || replicas > 1 || cache_mb > 0
        || !tenants.empty()) {
        std::cerr << "--hot-reload/--replicas/--cache-mb/"
                     "--tenants need the open loop (--qps)\n";
        return 2;
    }

    const std::vector<serve::Request> requests =
        serve::makeRequestStream(stream, pool);

    index::SeedIndex seed_index;
    if (use_index) {
        seed_index = index::SeedIndex::build(db);
        cfg.seedIndex = &seed_index;
    }
    serve::Engine engine(db, cfg);
    const serve::StreamReport report =
        engine.serveStream(requests);
    const serve::LatencySummary lat = report.latency.summary();
    writeMetricsFiles(engine, metrics_out, metrics_prom);

    if (!csv) {
        std::cout << "# bioarch-serve: " << requests.size()
                  << " requests vs " << db.size()
                  << " sequences / " << db.totalResidues()
                  << " residues\n";
    }

    core::Table summary({"metric", "value"});
    summary.row().add("requests").add(
        static_cast<std::uint64_t>(report.responses.size()));
    summary.row().add("batches").add(
        static_cast<std::uint64_t>(report.batches));
    summary.row().add("batch size").add(
        static_cast<std::uint64_t>(report.batchSize));
    summary.row().add("shards").add(
        static_cast<std::uint64_t>(report.shards));
    summary.row().add("jobs").add(
        static_cast<int>(report.jobs));
    summary.row().add("backend").add(
        std::string(align::backendName(cfg.backend)));
    summary.row().add("wall ms").add(report.wallMs, 2);
    summary.row().add("requests/sec").add(
        report.requestsPerSec(), 1);
    summary.row().add("p50 latency ms").add(lat.p50Us / 1000.0, 3);
    summary.row().add("p95 latency ms").add(lat.p95Us / 1000.0, 3);
    summary.row().add("p99 latency ms").add(lat.p99Us / 1000.0, 3);
    summary.row().add("max latency ms").add(lat.maxUs / 1000.0, 3);
    summary.row().add("mean latency ms").add(
        lat.meanUs / 1000.0, 3);
    summary.row().add("scan cpu ms").add(report.cpuMs, 2);
    summary.row().add("parallel efficiency").add(
        report.parallelEfficiency(), 2);
    summary.row().add("total cells").add(report.totalCells);
    if (stream.reportAlignments) {
        std::uint64_t aln = 0;
        std::uint64_t tb_cells = 0;
        for (const serve::Response &r : report.responses) {
            aln += r.alignments.size();
            tb_cells += r.tracebackCells;
        }
        summary.row().add("alignments").add(aln);
        summary.row().add("traceback cells").add(tb_cells);
    }

    // Per-application slice of the stream (the five simulator
    // workloads plus the served-only blastn kind).
    std::vector<kernels::Workload> kinds(
        std::begin(kernels::allWorkloads),
        std::end(kernels::allWorkloads));
    kinds.push_back(kernels::Workload::Blastn);
    core::Table mix({"workload", "requests", "mean latency ms",
                     "mean hits"});
    for (const kernels::Workload w : kinds) {
        std::uint64_t n = 0;
        std::uint64_t hits = 0;
        double latency_us = 0.0;
        for (const serve::Response &r : report.responses) {
            if (r.kind != w)
                continue;
            ++n;
            hits += r.hits.size();
            latency_us += r.latencyUs();
        }
        if (n == 0)
            continue;
        mix.row()
            .add(std::string(kernels::workloadName(w)))
            .add(n)
            .add(latency_us / static_cast<double>(n) / 1000.0, 3)
            .add(static_cast<double>(hits)
                     / static_cast<double>(n),
                 1);
    }

    core::Table hist({"latency bucket", "requests"});
    for (const serve::LatencyBucket &b :
         report.latency.histogram()) {
        std::ostringstream label;
        label.setf(std::ios::fixed);
        label.precision(3);
        label << "[" << b.loUs / 1000.0 << ", " << b.hiUs / 1000.0
              << ") ms";
        hist.row().add(label.str()).add(
            static_cast<std::uint64_t>(b.count));
    }

    if (csv) {
        summary.printCsv(std::cout);
        mix.printCsv(std::cout);
        hist.printCsv(std::cout);
    } else {
        summary.print(std::cout);
        std::cout << "\nper-application mix:\n";
        mix.print(std::cout);
        std::cout << "\nlatency histogram:\n";
        hist.print(std::cout);
    }
    return 0;
}
