/**
 * @file
 * bioarch-characterize: command-line front end to the whole stack.
 *
 * Examples:
 *   bioarch-characterize --workload blast
 *   bioarch-characterize --workload sw_vmx128 --width 8 \
 *       --memory meinf --bpred perfect --db-seqs 24
 *   bioarch-characterize --workload fasta34 --save-trace f.trc
 *   bioarch-characterize --trace f.trc --width 16 --csv
 *
 * Prints the characterization the paper reports per application:
 * instruction mix, IPC, cache and branch statistics, and the top
 * stall reasons. With --sweep it instead fans the full
 * width x memory x predictor cross out over --jobs threads and
 * prints one row per design point plus the sweep's throughput.
 */

#include <cstring>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "core/report.hh"
#include "core/suite.hh"
#include "core/sweep.hh"
#include "sim/sample.hh"
#include "trace/trace_io.hh"

using namespace bioarch;

namespace
{

void
usage(std::ostream &out)
{
    out << "usage: bioarch-characterize [options]\n"
           "\n"
           "workload selection (one of):\n"
           "  --workload NAME   ssearch34 | sw_vmx128 | sw_vmx256 |\n"
           "                    fasta34 | blast\n"
           "  --trace FILE      simulate a saved trace file\n"
           "\n"
           "working set (with --workload):\n"
           "  --db-seqs N       database sequences (default 8)\n"
           "  --query ACC       query accession (default P14942)\n"
           "  --save-trace FILE write the generated trace and exit\n"
           "\n"
           "machine:\n"
           "  --width W         4 | 8 | 16 (default 4)\n"
           "  --memory M        me1 | me2 | me3 | me4 | meinf\n"
           "  --bpred P         bimodal | gshare | gp | perfect\n"
           "\n"
           "sampled simulation (any flag enables sampling):\n"
           "  --sample-window N measured instructions per window\n"
           "                    (default 20000)\n"
           "  --sample-period N distance between window starts\n"
           "                    (default 250000; >= window)\n"
           "  --sample-warmup N functional-warmup instructions per\n"
           "                    window (default 50000)\n"
           "\n"
           "design-space sweep:\n"
           "  --sweep           simulate the full width x memory x\n"
           "                    predictor cross (for --workload, or\n"
           "                    all five applications) in parallel\n"
           "  --jobs N          worker threads for --sweep (default:\n"
           "                    BIOARCH_JOBS, else all hardware\n"
           "                    threads)\n"
           "\n"
           "output:\n"
           "  --csv             machine-readable output\n"
           "  --help            this text\n";
}

std::optional<kernels::Workload>
parseWorkload(const std::string &name)
{
    for (const kernels::Workload w : kernels::allWorkloads) {
        std::string n(kernels::workloadName(w));
        for (char &c : n)
            c = static_cast<char>(std::tolower(c));
        if (n == name)
            return w;
    }
    return std::nullopt;
}

std::optional<sim::MemoryConfig>
parseMemory(const std::string &name)
{
    for (const sim::MemoryConfig &m : core::memorySweep())
        if (m.name == name)
            return m;
    return std::nullopt;
}

std::optional<sim::PredictorKind>
parsePredictor(const std::string &name)
{
    if (name == "bimodal")
        return sim::PredictorKind::Bimodal;
    if (name == "gshare")
        return sim::PredictorKind::Gshare;
    if (name == "gp" || name == "combined")
        return sim::PredictorKind::Combined;
    if (name == "perfect")
        return sim::PredictorKind::Perfect;
    return std::nullopt;
}

/**
 * --sweep: the paper's whole design space in one invocation. One
 * row per (workload, width, memory, predictor) point, simulated
 * across @p jobs threads, plus the throughput summary.
 */
int
runFullSweep(const std::optional<kernels::Workload> &only,
             const kernels::TraceSpec &spec, unsigned jobs,
             bool csv,
             const std::optional<sim::SampleConfig> &sample)
{
    core::WorkloadSuite suite(spec);

    std::vector<kernels::Workload> apps;
    if (only)
        apps.push_back(*only);
    else
        apps.assign(std::begin(kernels::allWorkloads),
                    std::end(kernels::allWorkloads));

    const sim::PredictorKind kinds[] = {
        sim::PredictorKind::Bimodal, sim::PredictorKind::Gshare,
        sim::PredictorKind::Combined, sim::PredictorKind::Perfect};

    std::vector<core::SweepPoint> points;
    for (const kernels::Workload w : apps)
        for (const sim::CoreConfig &core_cfg : core::coreSweep())
            for (const sim::MemoryConfig &mem : core::memorySweep())
                for (const sim::PredictorKind kind : kinds) {
                    core::SweepPoint p;
                    p.workload = w;
                    p.config.core = core_cfg;
                    p.config.memory = mem;
                    p.config.bpred.kind = kind;
                    p.sample = sample;
                    points.push_back(std::move(p));
                }

    core::SweepRunner runner(suite, jobs);
    const core::SweepResult sweep = runner.run(points);

    core::Table t({"workload", "core", "memory", "bpred", "cycles",
                   "IPC", "DL1 miss %", "BP acc %", "ms"});
    for (std::size_t i = 0; i < sweep.points.size(); ++i) {
        const core::SweepPointResult &r = sweep.points[i];
        // Sampled points report whole-trace estimates; full points
        // report exact counts. Either way the row shape is one.
        const std::uint64_t cycles = r.sampled
            ? static_cast<std::uint64_t>(r.sampled->estimatedCycles)
            : r.stats.cycles;
        const double ipc =
            r.sampled ? r.sampled->ipc() : r.stats.ipc();
        const double dl1 = r.sampled ? r.sampled->dl1MissRate()
                                     : r.stats.dl1MissRate();
        t.row()
            .add(std::string(kernels::workloadName(r.point.workload)))
            .add(r.point.config.core.name)
            .add(r.point.config.memory.name)
            .add(std::string(
                sim::predictorKindName(r.point.config.bpred.kind)))
            .add(cycles)
            .add(ipc, 3)
            .add(100.0 * dl1, 2)
            .add(100.0 * r.stats.predictionAccuracy(), 2)
            .add(r.elapsedMs, 1);
    }

    const core::SweepSummary &s = sweep.summary;
    core::Table summary({"metric", "value"});
    summary.row().add("points").add(
        static_cast<std::uint64_t>(s.points));
    summary.row().add("jobs").add(static_cast<int>(s.jobs));
    summary.row().add("wall ms").add(s.wallMs, 1);
    summary.row().add("serial-equivalent ms").add(s.cpuMs, 1);
    summary.row().add("points/sec").add(s.pointsPerSec(), 1);
    summary.row().add("parallel efficiency").add(
        s.parallelEfficiency(), 2);
    summary.row().add("total cycles simulated").add(s.totalCycles);
    summary.row().add("total instructions").add(
        s.totalInstructions);

    if (csv) {
        t.printCsv(std::cout);
        summary.printCsv(std::cout);
    } else {
        t.print(std::cout);
        std::cout << "\nsweep summary:\n";
        summary.print(std::cout);
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    std::optional<kernels::Workload> workload;
    std::string trace_path;
    std::string save_path;
    kernels::TraceSpec spec;
    spec.dbSequences = 8;
    sim::SimConfig cfg;
    bool csv = false;
    bool sweep = false;
    bool sampling = false;
    sim::SampleConfig sample_cfg;
    unsigned jobs = core::ThreadPool::defaultJobs();

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&]() -> std::string {
            if (i + 1 >= argc) {
                std::cerr << "missing value for " << arg << "\n";
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--help" || arg == "-h") {
            usage(std::cout);
            return 0;
        } else if (arg == "--workload") {
            workload = parseWorkload(value());
            if (!workload) {
                std::cerr << "unknown workload\n";
                return 2;
            }
        } else if (arg == "--trace") {
            trace_path = value();
        } else if (arg == "--save-trace") {
            save_path = value();
        } else if (arg == "--db-seqs") {
            spec.dbSequences = std::atoi(value().c_str());
            if (spec.dbSequences <= 0) {
                std::cerr << "--db-seqs must be positive\n";
                return 2;
            }
        } else if (arg == "--query") {
            spec.queryAccession = value();
        } else if (arg == "--width") {
            const std::string w = value();
            if (w == "4")
                cfg.core = sim::core4Way();
            else if (w == "8")
                cfg.core = sim::core8Way();
            else if (w == "16")
                cfg.core = sim::core16Way();
            else {
                std::cerr << "--width must be 4, 8 or 16\n";
                return 2;
            }
        } else if (arg == "--memory") {
            const auto mem = parseMemory(value());
            if (!mem) {
                std::cerr << "unknown memory preset\n";
                return 2;
            }
            cfg.memory = *mem;
        } else if (arg == "--bpred") {
            const auto bp = parsePredictor(value());
            if (!bp) {
                std::cerr << "unknown predictor\n";
                return 2;
            }
            cfg.bpred.kind = *bp;
        } else if (arg == "--sample-window"
                   || arg == "--sample-period"
                   || arg == "--sample-warmup") {
            // Reject zero / negative / non-numeric up front: a zero
            // window or period would plan no measurement at all,
            // and negative counts are nonsense.
            const long long n = std::atoll(value().c_str());
            if (n <= 0) {
                std::cerr << arg
                          << " must be a positive instruction "
                             "count\n";
                return 2;
            }
            if (arg == "--sample-window")
                sample_cfg.windowInsts =
                    static_cast<std::uint64_t>(n);
            else if (arg == "--sample-period")
                sample_cfg.periodInsts =
                    static_cast<std::uint64_t>(n);
            else
                sample_cfg.warmupInsts =
                    static_cast<std::uint64_t>(n);
            sampling = true;
        } else if (arg == "--sweep") {
            sweep = true;
        } else if (arg == "--jobs") {
            const int n = std::atoi(value().c_str());
            if (n <= 0) {
                std::cerr << "--jobs must be positive\n";
                return 2;
            }
            jobs = static_cast<unsigned>(n);
        } else if (arg == "--csv") {
            csv = true;
        } else {
            std::cerr << "unknown option " << arg << " (--help)\n";
            return 2;
        }
    }

    if (workload && !trace_path.empty()) {
        std::cerr << "--trace and --workload are mutually "
                     "exclusive: pick one trace source (--help)\n";
        return 2;
    }

    if (sampling) {
        const std::string problem = sample_cfg.validate();
        if (!problem.empty()) {
            std::cerr << problem << "\n";
            return 2;
        }
    }
    const std::optional<sim::SampleConfig> sample =
        sampling ? std::optional<sim::SampleConfig>(sample_cfg)
                 : std::nullopt;

    if (sweep) {
        if (!trace_path.empty()) {
            std::cerr << "--sweep generates its own traces; it "
                         "cannot be combined with --trace\n";
            return 2;
        }
        return runFullSweep(workload, spec, jobs, csv, sample);
    }

    if (!workload && trace_path.empty()) {
        usage(std::cerr);
        return 2;
    }

    // Obtain the trace.
    trace::Trace tr;
    try {
        if (!trace_path.empty()) {
            tr = trace::readTraceFile(trace_path);
        } else {
            tr = kernels::traceWorkload(*workload, spec).trace;
        }
        if (!save_path.empty()) {
            trace::writeTraceFile(save_path, tr);
            std::cout << "wrote " << tr.size()
                      << " instructions to " << save_path << "\n";
            return 0;
        }
    } catch (const std::exception &e) {
        std::cerr << "error: " << e.what() << "\n";
        return 1;
    }

    // Simulate (fully, or sampled) and report.
    std::optional<sim::SampledStats> sampled;
    sim::SimStats stats;
    if (sample)
        sampled = sim::sampleTrace(tr, cfg, *sample);
    else
        stats = core::simulate(tr, cfg);
    if (sampled)
        stats = sampled->measured;
    const trace::InstructionMix mix = tr.mix();

    core::Table summary({"metric", "value"});
    summary.row().add("trace").add(tr.name());
    summary.row().add("instructions").add(
        static_cast<std::uint64_t>(tr.size()));
    summary.row().add("core").add(cfg.core.name);
    summary.row().add("memory").add(cfg.memory.name);
    summary.row().add("predictor").add(
        std::string(sim::predictorKindName(cfg.bpred.kind)));
    if (sampled) {
        summary.row().add("sampling").add(
            "window " + std::to_string(sample->windowInsts)
            + " / period " + std::to_string(sample->periodInsts)
            + " / warmup " + std::to_string(sample->warmupInsts));
        summary.row().add("windows").add(sampled->windows);
        summary.row().add("sampled insts %").add(
            100.0 * sampled->sampledFraction(), 2);
        summary.row().add("est. cycles").add(
            static_cast<std::uint64_t>(sampled->estimatedCycles));
        summary.row().add("est. IPC").add(sampled->ipc(), 3);
    } else {
        summary.row().add("cycles").add(stats.cycles);
        summary.row().add("IPC").add(stats.ipc(), 3);
    }
    // Sampled runs report the exact whole-trace rates from the
    // functional coverage stream, not the windowed counters.
    summary.row().add("DL1 miss rate %").add(
        100.0
            * (sampled ? sampled->dl1MissRate()
                       : stats.dl1MissRate()),
        2);
    summary.row().add("L2 misses").add(
        sampled ? sampled->l2Misses : stats.l2Misses);
    summary.row().add("BP accuracy %").add(
        100.0 * stats.predictionAccuracy(), 2);
    summary.row().add("ctrl %").add(100.0 * mix.ctrlFraction(), 1);
    summary.row().add("load %").add(100.0 * mix.loadFraction(), 1);

    core::Table traumas({"trauma", "cycles"});
    sim::TraumaCounts copy = stats.traumas;
    for (int k = 0; k < 5; ++k) {
        const sim::Trauma t = copy.dominant();
        if (copy.get(t) == 0)
            break;
        traumas.row()
            .add(std::string(sim::traumaName(t)))
            .add(copy.get(t));
        copy.cycles[static_cast<int>(t)] = 0;
    }

    if (csv) {
        summary.printCsv(std::cout);
        traumas.printCsv(std::cout);
    } else {
        summary.print(std::cout);
        std::cout << "\ntop stall reasons:\n";
        traumas.print(std::cout);
    }
    return 0;
}
