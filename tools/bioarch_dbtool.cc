/**
 * @file
 * bioarch-dbtool: build / inspect / verify the on-disk
 * database+index container (src/index/container.hh).
 *
 *   bioarch-dbtool build <out.db> [--db-seqs N] [--seed S]
 *                  [--zipf] [--no-index] [--word-size W]
 *       Generate the synthetic database (the serving tier's
 *       workload), build its seed index, and serialize both.
 *
 *   bioarch-dbtool inspect <file.db>
 *       Print the header, section table, and index statistics.
 *
 *   bioarch-dbtool verify <file.db> [--deep]
 *       Map + verify (magic, version, checksum, structural
 *       invariants). --deep additionally materializes the
 *       database, rebuilds the index from it, and compares both
 *       against the stored bytes.
 *
 * Exit codes: 0 ok, 1 verification/build failure, 2 usage.
 */

#include <cstdint>
#include <cstring>
#include <iostream>
#include <string>

#include "bio/synthetic.hh"
#include "index/container.hh"
#include "index/seed_index.hh"

namespace
{

using namespace bioarch;

int
usage()
{
    std::cerr
        << "usage: bioarch-dbtool build <out.db> [--db-seqs N] "
           "[--seed S] [--zipf] [--no-index] [--word-size W]\n"
           "       bioarch-dbtool inspect <file.db>\n"
           "       bioarch-dbtool verify <file.db> [--deep]\n";
    return 2;
}

/** One-line rejection of an unrecognized option (exit code 2). */
int
badOption(const std::string &arg)
{
    std::cerr << "bioarch-dbtool: unknown option '" << arg
              << "' (run with no arguments for usage)\n";
    return 2;
}

bool
parseUint(const char *s, std::uint64_t &out)
{
    char *end = nullptr;
    out = std::strtoull(s, &end, 10);
    return end != s && *end == '\0';
}

int
runBuild(int argc, char **argv)
{
    if (argc < 1)
        return usage();
    const std::string path = argv[0];
    std::uint64_t seqs = 1000;
    std::uint64_t seed = 0xDBDBDBDB;
    std::uint64_t word_size = 3;
    bool zipf = false;
    bool with_index = true;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--zipf") {
            zipf = true;
        } else if (arg == "--no-index") {
            with_index = false;
        } else if (arg == "--db-seqs" && i + 1 < argc) {
            if (!parseUint(argv[++i], seqs))
                return usage();
        } else if (arg == "--seed" && i + 1 < argc) {
            if (!parseUint(argv[++i], seed))
                return usage();
        } else if (arg == "--word-size" && i + 1 < argc) {
            if (!parseUint(argv[++i], word_size))
                return usage();
        } else {
            return badOption(arg);
        }
    }

    const bio::SequenceDatabase db = zipf
        ? bio::makeZipfDatabase(static_cast<int>(seqs), seed)
        : bio::makeDefaultDatabase(static_cast<int>(seqs), seed);
    if (with_index) {
        index::IndexParams params;
        params.wordSize = static_cast<int>(word_size);
        const index::SeedIndex idx =
            index::SeedIndex::build(db, params);
        index::writeDatabaseFile(path, db, &idx);
        std::cout << "built " << path << ": " << db.size()
                  << " sequences, " << db.totalResidues()
                  << " residues, index w=" << idx.wordSize()
                  << " postings=" << idx.numPostings() << "\n";
    } else {
        index::writeDatabaseFile(path, db, nullptr);
        std::cout << "built " << path << ": " << db.size()
                  << " sequences, " << db.totalResidues()
                  << " residues, no index\n";
    }
    return 0;
}

int
runInspect(int argc, char **argv)
{
    if (argc != 1)
        return usage();
    const auto file = index::DatabaseFile::load(argv[0]);
    const index::FileHeader &h = file->header();
    std::cout << "file: " << file->path() << "\n"
              << "  bytes: " << file->fileBytes() << "\n"
              << "  version: " << h.version << "\n"
              << "  sequences: " << h.numSequences << "\n"
              << "  residues: " << h.totalResidues << "\n"
              << "  checksum: 0x" << std::hex << h.payloadChecksum
              << std::dec << "\n"
              << "  index: "
              << (file->hasIndex() ? "present" : "absent") << "\n";
    if (file->hasIndex()) {
        const index::SeedIndex idx = file->indexView();
        std::cout << "    word size: " << idx.wordSize() << "\n"
                  << "    table slots: " << idx.tableSize() << "\n"
                  << "    postings: " << idx.numPostings() << "\n";
    }
    static const char *names[] = {
        "seq_offsets", "arena",        "id_offsets",
        "id_blob",     "desc_offsets", "desc_blob",
        "index_heads", "index_postings"};
    std::cout << "  sections:\n";
    for (std::size_t i = 0; i < index::numSections; ++i)
        std::cout << "    " << names[i] << ": offset "
                  << h.sections[i].offset << " bytes "
                  << h.sections[i].bytes << "\n";
    return 0;
}

int
runVerify(int argc, char **argv)
{
    if (argc < 1)
        return usage();
    bool deep = false;
    for (int i = 1; i < argc; ++i) {
        if (std::string(argv[i]) == "--deep")
            deep = true;
        else
            return badOption(argv[i]);
    }
    // load() runs the full structural verification; reaching this
    // line means magic/version/checksum/tables all held.
    const auto file = index::DatabaseFile::load(argv[0]);
    std::cout << "verify " << file->path()
              << ": header+checksum+structure ok\n";
    if (deep) {
        const bio::SequenceDatabase db = file->materialize();
        if (db.totalResidues() != file->totalResidues()
            || std::memcmp(db.packedResidues(), file->arena(),
                           static_cast<std::size_t>(
                               file->totalResidues()))
                != 0) {
            std::cerr << "verify: materialized arena differs from "
                         "the stored arena\n";
            return 1;
        }
        if (file->hasIndex()) {
            index::IndexParams params;
            params.wordSize = file->indexView().wordSize();
            const index::SeedIndex rebuilt =
                index::SeedIndex::build(db, params);
            if (!rebuilt.equals(file->indexView())) {
                std::cerr << "verify: stored index differs from a "
                             "rebuild over the stored database\n";
                return 1;
            }
        }
        std::cout << "verify --deep: arena and index match a "
                     "rebuild\n";
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        return usage();
    const std::string cmd = argv[1];
    try {
        if (cmd == "build")
            return runBuild(argc - 2, argv + 2);
        if (cmd == "inspect")
            return runInspect(argc - 2, argv + 2);
        if (cmd == "verify")
            return runVerify(argc - 2, argv + 2);
    } catch (const std::exception &e) {
        std::cerr << "bioarch-dbtool: " << e.what() << "\n";
        return 1;
    }
    std::cerr << "bioarch-dbtool: unknown command '" << cmd
              << "' (want build | inspect | verify)\n";
    return 2;
}
