file(REMOVE_RECURSE
  "CMakeFiles/sw_simd_test.dir/sw_simd_test.cc.o"
  "CMakeFiles/sw_simd_test.dir/sw_simd_test.cc.o.d"
  "sw_simd_test"
  "sw_simd_test.pdb"
  "sw_simd_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sw_simd_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
