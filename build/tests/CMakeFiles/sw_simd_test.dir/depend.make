# Empty dependencies file for sw_simd_test.
# This may be replaced when dependencies are built.
