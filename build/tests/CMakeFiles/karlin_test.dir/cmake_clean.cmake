file(REMOVE_RECURSE
  "CMakeFiles/karlin_test.dir/karlin_test.cc.o"
  "CMakeFiles/karlin_test.dir/karlin_test.cc.o.d"
  "karlin_test"
  "karlin_test.pdb"
  "karlin_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/karlin_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
