# Empty compiler generated dependencies file for karlin_test.
# This may be replaced when dependencies are built.
