# Empty dependencies file for pipeline_limits_test.
# This may be replaced when dependencies are built.
