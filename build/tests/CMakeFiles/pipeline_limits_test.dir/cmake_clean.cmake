file(REMOVE_RECURSE
  "CMakeFiles/pipeline_limits_test.dir/pipeline_limits_test.cc.o"
  "CMakeFiles/pipeline_limits_test.dir/pipeline_limits_test.cc.o.d"
  "pipeline_limits_test"
  "pipeline_limits_test.pdb"
  "pipeline_limits_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pipeline_limits_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
