# Empty dependencies file for sw_striped_test.
# This may be replaced when dependencies are built.
