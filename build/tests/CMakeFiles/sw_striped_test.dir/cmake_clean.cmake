file(REMOVE_RECURSE
  "CMakeFiles/sw_striped_test.dir/sw_striped_test.cc.o"
  "CMakeFiles/sw_striped_test.dir/sw_striped_test.cc.o.d"
  "sw_striped_test"
  "sw_striped_test.pdb"
  "sw_striped_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sw_striped_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
