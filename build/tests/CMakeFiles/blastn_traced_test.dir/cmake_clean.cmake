file(REMOVE_RECURSE
  "CMakeFiles/blastn_traced_test.dir/blastn_traced_test.cc.o"
  "CMakeFiles/blastn_traced_test.dir/blastn_traced_test.cc.o.d"
  "blastn_traced_test"
  "blastn_traced_test.pdb"
  "blastn_traced_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/blastn_traced_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
