# Empty dependencies file for blastn_traced_test.
# This may be replaced when dependencies are built.
