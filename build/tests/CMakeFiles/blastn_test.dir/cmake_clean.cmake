file(REMOVE_RECURSE
  "CMakeFiles/blastn_test.dir/blastn_test.cc.o"
  "CMakeFiles/blastn_test.dir/blastn_test.cc.o.d"
  "blastn_test"
  "blastn_test.pdb"
  "blastn_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/blastn_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
