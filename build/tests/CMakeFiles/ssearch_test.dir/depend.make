# Empty dependencies file for ssearch_test.
# This may be replaced when dependencies are built.
