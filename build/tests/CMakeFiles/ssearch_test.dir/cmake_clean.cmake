file(REMOVE_RECURSE
  "CMakeFiles/ssearch_test.dir/ssearch_test.cc.o"
  "CMakeFiles/ssearch_test.dir/ssearch_test.cc.o.d"
  "ssearch_test"
  "ssearch_test.pdb"
  "ssearch_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ssearch_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
