# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/bio_test[1]_include.cmake")
include("/root/repo/build/tests/vec_test[1]_include.cmake")
include("/root/repo/build/tests/align_test[1]_include.cmake")
include("/root/repo/build/tests/ssearch_test[1]_include.cmake")
include("/root/repo/build/tests/sw_simd_test[1]_include.cmake")
include("/root/repo/build/tests/fasta_test[1]_include.cmake")
include("/root/repo/build/tests/blast_test[1]_include.cmake")
include("/root/repo/build/tests/karlin_test[1]_include.cmake")
include("/root/repo/build/tests/trace_test[1]_include.cmake")
include("/root/repo/build/tests/kernels_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/figures_test[1]_include.cmake")
include("/root/repo/build/tests/trace_io_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/sw_striped_test[1]_include.cmake")
include("/root/repo/build/tests/pipeline_limits_test[1]_include.cmake")
include("/root/repo/build/tests/blastn_test[1]_include.cmake")
include("/root/repo/build/tests/blastn_traced_test[1]_include.cmake")
