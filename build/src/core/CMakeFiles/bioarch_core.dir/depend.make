# Empty dependencies file for bioarch_core.
# This may be replaced when dependencies are built.
