file(REMOVE_RECURSE
  "CMakeFiles/bioarch_core.dir/report.cc.o"
  "CMakeFiles/bioarch_core.dir/report.cc.o.d"
  "CMakeFiles/bioarch_core.dir/suite.cc.o"
  "CMakeFiles/bioarch_core.dir/suite.cc.o.d"
  "libbioarch_core.a"
  "libbioarch_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bioarch_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
