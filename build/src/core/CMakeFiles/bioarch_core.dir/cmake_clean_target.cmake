file(REMOVE_RECURSE
  "libbioarch_core.a"
)
