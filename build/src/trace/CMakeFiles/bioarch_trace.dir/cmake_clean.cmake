file(REMOVE_RECURSE
  "CMakeFiles/bioarch_trace.dir/trace.cc.o"
  "CMakeFiles/bioarch_trace.dir/trace.cc.o.d"
  "CMakeFiles/bioarch_trace.dir/trace_io.cc.o"
  "CMakeFiles/bioarch_trace.dir/trace_io.cc.o.d"
  "CMakeFiles/bioarch_trace.dir/tracer.cc.o"
  "CMakeFiles/bioarch_trace.dir/tracer.cc.o.d"
  "libbioarch_trace.a"
  "libbioarch_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bioarch_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
