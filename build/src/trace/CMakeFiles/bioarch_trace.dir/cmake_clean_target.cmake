file(REMOVE_RECURSE
  "libbioarch_trace.a"
)
