# Empty dependencies file for bioarch_trace.
# This may be replaced when dependencies are built.
