file(REMOVE_RECURSE
  "CMakeFiles/bioarch_sim.dir/bpred.cc.o"
  "CMakeFiles/bioarch_sim.dir/bpred.cc.o.d"
  "CMakeFiles/bioarch_sim.dir/cache.cc.o"
  "CMakeFiles/bioarch_sim.dir/cache.cc.o.d"
  "CMakeFiles/bioarch_sim.dir/config.cc.o"
  "CMakeFiles/bioarch_sim.dir/config.cc.o.d"
  "CMakeFiles/bioarch_sim.dir/pipeline.cc.o"
  "CMakeFiles/bioarch_sim.dir/pipeline.cc.o.d"
  "CMakeFiles/bioarch_sim.dir/tlb.cc.o"
  "CMakeFiles/bioarch_sim.dir/tlb.cc.o.d"
  "CMakeFiles/bioarch_sim.dir/trauma.cc.o"
  "CMakeFiles/bioarch_sim.dir/trauma.cc.o.d"
  "libbioarch_sim.a"
  "libbioarch_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bioarch_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
