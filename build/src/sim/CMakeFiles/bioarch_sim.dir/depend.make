# Empty dependencies file for bioarch_sim.
# This may be replaced when dependencies are built.
