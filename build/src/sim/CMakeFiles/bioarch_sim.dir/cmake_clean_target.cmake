file(REMOVE_RECURSE
  "libbioarch_sim.a"
)
