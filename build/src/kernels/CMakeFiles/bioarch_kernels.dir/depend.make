# Empty dependencies file for bioarch_kernels.
# This may be replaced when dependencies are built.
