file(REMOVE_RECURSE
  "CMakeFiles/bioarch_kernels.dir/blast_traced.cc.o"
  "CMakeFiles/bioarch_kernels.dir/blast_traced.cc.o.d"
  "CMakeFiles/bioarch_kernels.dir/blastn_traced.cc.o"
  "CMakeFiles/bioarch_kernels.dir/blastn_traced.cc.o.d"
  "CMakeFiles/bioarch_kernels.dir/factory.cc.o"
  "CMakeFiles/bioarch_kernels.dir/factory.cc.o.d"
  "CMakeFiles/bioarch_kernels.dir/fasta_traced.cc.o"
  "CMakeFiles/bioarch_kernels.dir/fasta_traced.cc.o.d"
  "CMakeFiles/bioarch_kernels.dir/ssearch_traced.cc.o"
  "CMakeFiles/bioarch_kernels.dir/ssearch_traced.cc.o.d"
  "CMakeFiles/bioarch_kernels.dir/sw_vmx_traced.cc.o"
  "CMakeFiles/bioarch_kernels.dir/sw_vmx_traced.cc.o.d"
  "CMakeFiles/bioarch_kernels.dir/workload.cc.o"
  "CMakeFiles/bioarch_kernels.dir/workload.cc.o.d"
  "libbioarch_kernels.a"
  "libbioarch_kernels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bioarch_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
