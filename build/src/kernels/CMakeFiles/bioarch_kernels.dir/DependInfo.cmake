
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/kernels/blast_traced.cc" "src/kernels/CMakeFiles/bioarch_kernels.dir/blast_traced.cc.o" "gcc" "src/kernels/CMakeFiles/bioarch_kernels.dir/blast_traced.cc.o.d"
  "/root/repo/src/kernels/blastn_traced.cc" "src/kernels/CMakeFiles/bioarch_kernels.dir/blastn_traced.cc.o" "gcc" "src/kernels/CMakeFiles/bioarch_kernels.dir/blastn_traced.cc.o.d"
  "/root/repo/src/kernels/factory.cc" "src/kernels/CMakeFiles/bioarch_kernels.dir/factory.cc.o" "gcc" "src/kernels/CMakeFiles/bioarch_kernels.dir/factory.cc.o.d"
  "/root/repo/src/kernels/fasta_traced.cc" "src/kernels/CMakeFiles/bioarch_kernels.dir/fasta_traced.cc.o" "gcc" "src/kernels/CMakeFiles/bioarch_kernels.dir/fasta_traced.cc.o.d"
  "/root/repo/src/kernels/ssearch_traced.cc" "src/kernels/CMakeFiles/bioarch_kernels.dir/ssearch_traced.cc.o" "gcc" "src/kernels/CMakeFiles/bioarch_kernels.dir/ssearch_traced.cc.o.d"
  "/root/repo/src/kernels/sw_vmx_traced.cc" "src/kernels/CMakeFiles/bioarch_kernels.dir/sw_vmx_traced.cc.o" "gcc" "src/kernels/CMakeFiles/bioarch_kernels.dir/sw_vmx_traced.cc.o.d"
  "/root/repo/src/kernels/workload.cc" "src/kernels/CMakeFiles/bioarch_kernels.dir/workload.cc.o" "gcc" "src/kernels/CMakeFiles/bioarch_kernels.dir/workload.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/align/CMakeFiles/bioarch_align.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/bioarch_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/bio/CMakeFiles/bioarch_bio.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/bioarch_isa.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
