file(REMOVE_RECURSE
  "libbioarch_kernels.a"
)
