# Empty dependencies file for bioarch_align.
# This may be replaced when dependencies are built.
