file(REMOVE_RECURSE
  "CMakeFiles/bioarch_align.dir/banded.cc.o"
  "CMakeFiles/bioarch_align.dir/banded.cc.o.d"
  "CMakeFiles/bioarch_align.dir/blast.cc.o"
  "CMakeFiles/bioarch_align.dir/blast.cc.o.d"
  "CMakeFiles/bioarch_align.dir/blastn.cc.o"
  "CMakeFiles/bioarch_align.dir/blastn.cc.o.d"
  "CMakeFiles/bioarch_align.dir/fasta.cc.o"
  "CMakeFiles/bioarch_align.dir/fasta.cc.o.d"
  "CMakeFiles/bioarch_align.dir/karlin.cc.o"
  "CMakeFiles/bioarch_align.dir/karlin.cc.o.d"
  "CMakeFiles/bioarch_align.dir/needleman_wunsch.cc.o"
  "CMakeFiles/bioarch_align.dir/needleman_wunsch.cc.o.d"
  "CMakeFiles/bioarch_align.dir/smith_waterman.cc.o"
  "CMakeFiles/bioarch_align.dir/smith_waterman.cc.o.d"
  "CMakeFiles/bioarch_align.dir/ssearch.cc.o"
  "CMakeFiles/bioarch_align.dir/ssearch.cc.o.d"
  "CMakeFiles/bioarch_align.dir/sw_simd.cc.o"
  "CMakeFiles/bioarch_align.dir/sw_simd.cc.o.d"
  "CMakeFiles/bioarch_align.dir/sw_striped.cc.o"
  "CMakeFiles/bioarch_align.dir/sw_striped.cc.o.d"
  "libbioarch_align.a"
  "libbioarch_align.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bioarch_align.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
