file(REMOVE_RECURSE
  "libbioarch_align.a"
)
