
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/align/banded.cc" "src/align/CMakeFiles/bioarch_align.dir/banded.cc.o" "gcc" "src/align/CMakeFiles/bioarch_align.dir/banded.cc.o.d"
  "/root/repo/src/align/blast.cc" "src/align/CMakeFiles/bioarch_align.dir/blast.cc.o" "gcc" "src/align/CMakeFiles/bioarch_align.dir/blast.cc.o.d"
  "/root/repo/src/align/blastn.cc" "src/align/CMakeFiles/bioarch_align.dir/blastn.cc.o" "gcc" "src/align/CMakeFiles/bioarch_align.dir/blastn.cc.o.d"
  "/root/repo/src/align/fasta.cc" "src/align/CMakeFiles/bioarch_align.dir/fasta.cc.o" "gcc" "src/align/CMakeFiles/bioarch_align.dir/fasta.cc.o.d"
  "/root/repo/src/align/karlin.cc" "src/align/CMakeFiles/bioarch_align.dir/karlin.cc.o" "gcc" "src/align/CMakeFiles/bioarch_align.dir/karlin.cc.o.d"
  "/root/repo/src/align/needleman_wunsch.cc" "src/align/CMakeFiles/bioarch_align.dir/needleman_wunsch.cc.o" "gcc" "src/align/CMakeFiles/bioarch_align.dir/needleman_wunsch.cc.o.d"
  "/root/repo/src/align/smith_waterman.cc" "src/align/CMakeFiles/bioarch_align.dir/smith_waterman.cc.o" "gcc" "src/align/CMakeFiles/bioarch_align.dir/smith_waterman.cc.o.d"
  "/root/repo/src/align/ssearch.cc" "src/align/CMakeFiles/bioarch_align.dir/ssearch.cc.o" "gcc" "src/align/CMakeFiles/bioarch_align.dir/ssearch.cc.o.d"
  "/root/repo/src/align/sw_simd.cc" "src/align/CMakeFiles/bioarch_align.dir/sw_simd.cc.o" "gcc" "src/align/CMakeFiles/bioarch_align.dir/sw_simd.cc.o.d"
  "/root/repo/src/align/sw_striped.cc" "src/align/CMakeFiles/bioarch_align.dir/sw_striped.cc.o" "gcc" "src/align/CMakeFiles/bioarch_align.dir/sw_striped.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/bio/CMakeFiles/bioarch_bio.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
