
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bio/alphabet.cc" "src/bio/CMakeFiles/bioarch_bio.dir/alphabet.cc.o" "gcc" "src/bio/CMakeFiles/bioarch_bio.dir/alphabet.cc.o.d"
  "/root/repo/src/bio/database.cc" "src/bio/CMakeFiles/bioarch_bio.dir/database.cc.o" "gcc" "src/bio/CMakeFiles/bioarch_bio.dir/database.cc.o.d"
  "/root/repo/src/bio/fasta_io.cc" "src/bio/CMakeFiles/bioarch_bio.dir/fasta_io.cc.o" "gcc" "src/bio/CMakeFiles/bioarch_bio.dir/fasta_io.cc.o.d"
  "/root/repo/src/bio/nucleotide.cc" "src/bio/CMakeFiles/bioarch_bio.dir/nucleotide.cc.o" "gcc" "src/bio/CMakeFiles/bioarch_bio.dir/nucleotide.cc.o.d"
  "/root/repo/src/bio/scoring.cc" "src/bio/CMakeFiles/bioarch_bio.dir/scoring.cc.o" "gcc" "src/bio/CMakeFiles/bioarch_bio.dir/scoring.cc.o.d"
  "/root/repo/src/bio/sequence.cc" "src/bio/CMakeFiles/bioarch_bio.dir/sequence.cc.o" "gcc" "src/bio/CMakeFiles/bioarch_bio.dir/sequence.cc.o.d"
  "/root/repo/src/bio/synthetic.cc" "src/bio/CMakeFiles/bioarch_bio.dir/synthetic.cc.o" "gcc" "src/bio/CMakeFiles/bioarch_bio.dir/synthetic.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
