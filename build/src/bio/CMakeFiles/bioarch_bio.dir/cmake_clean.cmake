file(REMOVE_RECURSE
  "CMakeFiles/bioarch_bio.dir/alphabet.cc.o"
  "CMakeFiles/bioarch_bio.dir/alphabet.cc.o.d"
  "CMakeFiles/bioarch_bio.dir/database.cc.o"
  "CMakeFiles/bioarch_bio.dir/database.cc.o.d"
  "CMakeFiles/bioarch_bio.dir/fasta_io.cc.o"
  "CMakeFiles/bioarch_bio.dir/fasta_io.cc.o.d"
  "CMakeFiles/bioarch_bio.dir/nucleotide.cc.o"
  "CMakeFiles/bioarch_bio.dir/nucleotide.cc.o.d"
  "CMakeFiles/bioarch_bio.dir/scoring.cc.o"
  "CMakeFiles/bioarch_bio.dir/scoring.cc.o.d"
  "CMakeFiles/bioarch_bio.dir/sequence.cc.o"
  "CMakeFiles/bioarch_bio.dir/sequence.cc.o.d"
  "CMakeFiles/bioarch_bio.dir/synthetic.cc.o"
  "CMakeFiles/bioarch_bio.dir/synthetic.cc.o.d"
  "libbioarch_bio.a"
  "libbioarch_bio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bioarch_bio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
