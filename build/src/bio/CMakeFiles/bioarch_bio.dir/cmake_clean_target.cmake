file(REMOVE_RECURSE
  "libbioarch_bio.a"
)
