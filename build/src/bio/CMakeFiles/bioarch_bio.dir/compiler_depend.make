# Empty compiler generated dependencies file for bioarch_bio.
# This may be replaced when dependencies are built.
