# Empty compiler generated dependencies file for bioarch_isa.
# This may be replaced when dependencies are built.
