file(REMOVE_RECURSE
  "CMakeFiles/bioarch_isa.dir/opclass.cc.o"
  "CMakeFiles/bioarch_isa.dir/opclass.cc.o.d"
  "libbioarch_isa.a"
  "libbioarch_isa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bioarch_isa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
