# Empty dependencies file for bioarch_isa.
# This may be replaced when dependencies are built.
