file(REMOVE_RECURSE
  "libbioarch_isa.a"
)
