file(REMOVE_RECURSE
  "CMakeFiles/bioarch-characterize.dir/bioarch_characterize.cc.o"
  "CMakeFiles/bioarch-characterize.dir/bioarch_characterize.cc.o.d"
  "bioarch-characterize"
  "bioarch-characterize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bioarch-characterize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
