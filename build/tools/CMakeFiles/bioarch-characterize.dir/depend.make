# Empty dependencies file for bioarch-characterize.
# This may be replaced when dependencies are built.
