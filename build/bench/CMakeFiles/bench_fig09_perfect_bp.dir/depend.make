# Empty dependencies file for bench_fig09_perfect_bp.
# This may be replaced when dependencies are built.
