# Empty dependencies file for bench_fig07_l1_latency.
# This may be replaced when dependencies are built.
