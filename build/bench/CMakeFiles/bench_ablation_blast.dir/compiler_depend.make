# Empty compiler generated dependencies file for bench_ablation_blast.
# This may be replaced when dependencies are built.
