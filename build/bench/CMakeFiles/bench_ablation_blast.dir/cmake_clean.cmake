file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_blast.dir/bench_ablation_blast.cc.o"
  "CMakeFiles/bench_ablation_blast.dir/bench_ablation_blast.cc.o.d"
  "bench_ablation_blast"
  "bench_ablation_blast.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_blast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
