
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig10_queue_occupancy.cc" "bench/CMakeFiles/bench_fig10_queue_occupancy.dir/bench_fig10_queue_occupancy.cc.o" "gcc" "bench/CMakeFiles/bench_fig10_queue_occupancy.dir/bench_fig10_queue_occupancy.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/bioarch_core.dir/DependInfo.cmake"
  "/root/repo/build/src/kernels/CMakeFiles/bioarch_kernels.dir/DependInfo.cmake"
  "/root/repo/build/src/align/CMakeFiles/bioarch_align.dir/DependInfo.cmake"
  "/root/repo/build/src/bio/CMakeFiles/bioarch_bio.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/bioarch_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/bioarch_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/bioarch_isa.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
