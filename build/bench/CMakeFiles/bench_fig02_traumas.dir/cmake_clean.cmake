file(REMOVE_RECURSE
  "CMakeFiles/bench_fig02_traumas.dir/bench_fig02_traumas.cc.o"
  "CMakeFiles/bench_fig02_traumas.dir/bench_fig02_traumas.cc.o.d"
  "bench_fig02_traumas"
  "bench_fig02_traumas.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig02_traumas.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
