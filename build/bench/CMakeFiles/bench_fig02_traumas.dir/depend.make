# Empty dependencies file for bench_fig02_traumas.
# This may be replaced when dependencies are built.
