# Empty dependencies file for bench_table3_trace_sizes.
# This may be replaced when dependencies are built.
