file(REMOVE_RECURSE
  "CMakeFiles/bench_aligners.dir/bench_aligners.cc.o"
  "CMakeFiles/bench_aligners.dir/bench_aligners.cc.o.d"
  "bench_aligners"
  "bench_aligners.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_aligners.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
