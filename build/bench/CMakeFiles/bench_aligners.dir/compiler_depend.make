# Empty compiler generated dependencies file for bench_aligners.
# This may be replaced when dependencies are built.
