# Empty compiler generated dependencies file for bench_fig04_ipc_vs_mem.
# This may be replaced when dependencies are built.
