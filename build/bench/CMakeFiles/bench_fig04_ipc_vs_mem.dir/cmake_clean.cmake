file(REMOVE_RECURSE
  "CMakeFiles/bench_fig04_ipc_vs_mem.dir/bench_fig04_ipc_vs_mem.cc.o"
  "CMakeFiles/bench_fig04_ipc_vs_mem.dir/bench_fig04_ipc_vs_mem.cc.o.d"
  "bench_fig04_ipc_vs_mem"
  "bench_fig04_ipc_vs_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig04_ipc_vs_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
