file(REMOVE_RECURSE
  "CMakeFiles/bench_blastn.dir/bench_blastn.cc.o"
  "CMakeFiles/bench_blastn.dir/bench_blastn.cc.o.d"
  "bench_blastn"
  "bench_blastn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_blastn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
