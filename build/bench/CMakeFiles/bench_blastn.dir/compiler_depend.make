# Empty compiler generated dependencies file for bench_blastn.
# This may be replaced when dependencies are built.
