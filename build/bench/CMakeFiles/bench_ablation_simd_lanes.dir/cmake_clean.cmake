file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_simd_lanes.dir/bench_ablation_simd_lanes.cc.o"
  "CMakeFiles/bench_ablation_simd_lanes.dir/bench_ablation_simd_lanes.cc.o.d"
  "bench_ablation_simd_lanes"
  "bench_ablation_simd_lanes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_simd_lanes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
