# Empty dependencies file for bench_ablation_simd_lanes.
# This may be replaced when dependencies are built.
