# Empty dependencies file for bench_fig08_simd_width_latency.
# This may be replaced when dependencies are built.
