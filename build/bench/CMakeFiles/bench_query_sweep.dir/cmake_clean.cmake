file(REMOVE_RECURSE
  "CMakeFiles/bench_query_sweep.dir/bench_query_sweep.cc.o"
  "CMakeFiles/bench_query_sweep.dir/bench_query_sweep.cc.o.d"
  "bench_query_sweep"
  "bench_query_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_query_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
