# Empty dependencies file for bench_query_sweep.
# This may be replaced when dependencies are built.
