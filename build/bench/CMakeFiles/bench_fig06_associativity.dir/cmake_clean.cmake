file(REMOVE_RECURSE
  "CMakeFiles/bench_fig06_associativity.dir/bench_fig06_associativity.cc.o"
  "CMakeFiles/bench_fig06_associativity.dir/bench_fig06_associativity.cc.o.d"
  "bench_fig06_associativity"
  "bench_fig06_associativity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig06_associativity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
