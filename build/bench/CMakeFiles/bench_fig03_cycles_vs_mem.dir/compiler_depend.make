# Empty compiler generated dependencies file for bench_fig03_cycles_vs_mem.
# This may be replaced when dependencies are built.
