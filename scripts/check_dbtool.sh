#!/usr/bin/env sh
# CI/ctest gate for the database container: a dbtool round trip
# must survive build -> verify --deep -> inspect, and a corrupted
# or truncated file must be *rejected* with a descriptive error.
#
# Usage: scripts/check_dbtool.sh <bioarch-dbtool>
set -eu

DBTOOL="${1:?usage: check_dbtool.sh <bioarch-dbtool>}"

WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT
DB="$WORK/zipf.db"

# Round trip: build with an index, verify deeply, inspect.
"$DBTOOL" build "$DB" --db-seqs 64 --zipf > /dev/null
"$DBTOOL" verify "$DB" --deep > /dev/null
"$DBTOOL" inspect "$DB" | grep -q "index: present" \
    || { echo "FAIL: inspect does not report the index"; exit 1; }

# No-index build still round-trips.
"$DBTOOL" build "$WORK/plain.db" --db-seqs 32 --no-index > /dev/null
"$DBTOOL" verify "$WORK/plain.db" --deep > /dev/null

# Corruption: flip one payload byte; verify must fail and say why.
cp "$DB" "$WORK/corrupt.db"
SIZE=$(wc -c < "$DB")
OFF=$((SIZE / 2))
printf '\377' | dd of="$WORK/corrupt.db" bs=1 seek="$OFF" \
    conv=notrunc 2> /dev/null
if "$DBTOOL" verify "$WORK/corrupt.db" > /dev/null 2> "$WORK/err"; then
    echo "FAIL: corrupted file verified clean"
    exit 1
fi
grep -qi "checksum\|corrupt\|monotone\|range" "$WORK/err" \
    || { echo "FAIL: corruption error not descriptive:"; \
         cat "$WORK/err"; exit 1; }

# Truncation: cut the file short; verify must fail and say why.
head -c $((SIZE - 64)) "$DB" > "$WORK/trunc.db"
if "$DBTOOL" verify "$WORK/trunc.db" > /dev/null 2> "$WORK/err"; then
    echo "FAIL: truncated file verified clean"
    exit 1
fi
grep -qi "truncat" "$WORK/err" \
    || { echo "FAIL: truncation error not descriptive:"; \
         cat "$WORK/err"; exit 1; }

# Not a database at all.
printf 'not a database\n' > "$WORK/junk.db"
if "$DBTOOL" verify "$WORK/junk.db" > /dev/null 2> "$WORK/err"; then
    echo "FAIL: junk file verified clean"
    exit 1
fi

echo "OK: dbtool round trip + corruption/truncation rejection"
