#!/usr/bin/env sh
# CLI contract of bioarch-serve and bioarch-dbtool: unknown flags,
# unknown --workload / --backend values, and malformed argument
# combinations fail fast with a one-line error on stderr and exit
# status 2 (registered as the `serve_cli` ctest).
#
# Usage: check_serve_cli.sh path/to/bioarch-serve path/to/bioarch-dbtool
set -u

SERVE="${1:?usage: check_serve_cli.sh path/to/bioarch-serve path/to/bioarch-dbtool}"
DBTOOL="${2:?usage: check_serve_cli.sh path/to/bioarch-serve path/to/bioarch-dbtool}"
fails=0

# check_rejects <binary> <description> <args...>: exit 2 + stderr.
check_rejects() {
    bin="$1"
    desc="$2"
    shift 2
    err=$("$bin" "$@" 2>&1 >/dev/null)
    rc=$?
    if [ "$rc" -ne 2 ]; then
        echo "FAIL: $desc: exit $rc, expected 2"
        fails=1
    elif [ -z "$err" ]; then
        echo "FAIL: $desc: no error message on stderr"
        fails=1
    else
        echo "ok: $desc -> exit 2: $(echo "$err" | head -1)"
    fi
}

# bioarch-serve
check_rejects "$SERVE" "unknown option" --frobnicate
check_rejects "$SERVE" "unknown workload" --workload nope
check_rejects "$SERVE" "unknown backend" --backend warp9
check_rejects "$SERVE" "missing option value" --workload
check_rejects "$SERVE" "non-positive requests" --requests 0
check_rejects "$SERVE" "non-positive qps" --qps -3
check_rejects "$SERVE" "malformed tenants spec" --tenants 100:10
check_rejects "$SERVE" "replicas need the open loop" --replicas 2
check_rejects "$SERVE" "blastn has no protein seed index" \
    --workload blastn --index

# bioarch-dbtool
check_rejects "$DBTOOL" "unknown command" frobnicate
check_rejects "$DBTOOL" "unknown build flag" \
    build /tmp/x.db --frobnicate
check_rejects "$DBTOOL" "unknown verify flag" \
    verify /tmp/x.db --shallow
check_rejects "$DBTOOL" "no arguments at all"

if ! "$SERVE" --help >/dev/null 2>&1; then
    echo "FAIL: bioarch-serve --help should exit 0"
    fails=1
fi

# Unknown-flag rejections must be one-line errors, not usage dumps.
lines=$("$DBTOOL" build /tmp/x.db --frobnicate 2>&1 | wc -l)
if [ "$lines" -ne 1 ]; then
    echo "FAIL: dbtool unknown-flag error should be one line, got $lines"
    fails=1
fi
lines=$("$SERVE" --frobnicate 2>&1 | wc -l)
if [ "$lines" -ne 1 ]; then
    echo "FAIL: serve unknown-flag error should be one line, got $lines"
    fails=1
fi

if [ "$fails" -eq 0 ]; then
    echo "serve CLI checks passed"
fi
exit "$fails"
