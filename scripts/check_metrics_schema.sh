#!/usr/bin/env sh
# CI/ctest gate: the JSON metrics snapshot must match the checked-in
# schema. Runs a short open-loop bioarch-serve (which writes a
# mid-run snapshot at FILE.mid and the final one at FILE), then
# validates with python3:
#   - every metric name is in scripts/metrics_schema.json, with the
#     declared type; every required name is present;
#   - histogram buckets are cumulative and end at "count";
#   - counters are monotone: mid-run value <= final value.
#
# Usage: scripts/check_metrics_schema.sh <bioarch-serve> [schema]
set -eu

SERVE_BIN="${1:?usage: check_metrics_schema.sh <bioarch-serve> [schema]}"
SCHEMA="${2:-$(dirname "$0")/metrics_schema.json}"

TMPDIR_SNAP="$(mktemp -d)"
trap 'rm -rf "$TMPDIR_SNAP"' EXIT
SNAP="$TMPDIR_SNAP/metrics.json"

# Fleet flags exercise every registered family: replicated
# engines, the result cache, per-tenant quota/WDRR counters, and
# the two-phase traceback series.
"$SERVE_BIN" --qps 300 --duration-s 1 --deadline-ms 50 \
    --db-seqs 48 --jobs 2 --replicas 2 --cache-mb 4 \
    --tenants 200:20:3:0.5,50:5:1:0.25,50:5:1:0.25 \
    --report-alignments \
    --metrics-out "$SNAP" \
    --metrics-prom "$TMPDIR_SNAP/metrics.prom" > /dev/null

test -s "$SNAP" || { echo "FAIL: no snapshot written"; exit 1; }
test -s "$SNAP.mid" || { echo "FAIL: no mid-run snapshot"; exit 1; }

python3 - "$SCHEMA" "$SNAP" "$SNAP.mid" <<'EOF'
import json
import sys

schema_path, final_path, mid_path = sys.argv[1:4]
with open(schema_path) as f:
    schema = json.load(f)
allowed = schema["metrics"]
required = set(schema["required"])
failures = []


def load(path):
    with open(path) as f:
        doc = json.load(f)
    if doc.get("version") != 1:
        failures.append(f"{path}: version != 1")
    return doc.get("metrics", [])


def check(path, metrics):
    seen = set()
    for m in metrics:
        name = m.get("name", "")
        key = (name, m.get("labels", ""))
        if key in seen:
            failures.append(f"{path}: duplicate series {key}")
        seen.add(key)
        if name not in allowed:
            failures.append(f"{path}: unknown metric '{name}'")
            continue
        if m.get("type") != allowed[name]:
            failures.append(
                f"{path}: {name} is {m.get('type')}, schema says "
                f"{allowed[name]}")
        if m.get("type") == "histogram":
            count = m.get("count", -1)
            buckets = m.get("buckets", [])
            cum = [b["count"] for b in buckets]
            if cum != sorted(cum):
                failures.append(
                    f"{path}: {name} buckets not cumulative")
            if count > 0 and (not cum or cum[-1] != count):
                failures.append(
                    f"{path}: {name} buckets end at "
                    f"{cum[-1] if cum else None}, count={count}")
        elif m.get("type") == "counter":
            v = m.get("value", -1)
            if not (isinstance(v, int) and v >= 0):
                failures.append(
                    f"{path}: counter {name} value {v!r} is not a "
                    "non-negative integer")
    missing = required - {n for n, _ in seen}
    if missing:
        failures.append(f"{path}: missing required {sorted(missing)}")
    return seen


final = load(final_path)
mid = load(mid_path)
check(final_path, final)
check(mid_path, mid)

# Counter monotonicity across the run: a counter observed mid-run
# can only grow by the final snapshot.
final_counters = {(m["name"], m.get("labels", "")): m["value"]
                  for m in final if m.get("type") == "counter"}
for m in mid:
    if m.get("type") != "counter":
        continue
    key = (m["name"], m.get("labels", ""))
    if key not in final_counters:
        failures.append(f"counter {key} vanished from final snapshot")
    elif m["value"] > final_counters[key]:
        failures.append(
            f"counter {key} moved backwards: mid={m['value']} "
            f"final={final_counters[key]}")

if failures:
    print("FAIL: metrics schema check")
    for f in failures:
        print("  -", f)
    sys.exit(1)
print(f"OK: {len(final)} series match {schema_path}")
EOF
