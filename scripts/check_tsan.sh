#!/usr/bin/env sh
# CI job: build with ThreadSanitizer and run the concurrency-
# sensitive tests (the sweep engine / thread pool, the traced
# kernels the sweep replays concurrently, the query-serving
# engine's batched fan-out, the online serving loop, the indexed
# serving route with its hot-reload epoch swaps, the replica
# router's scatter-gather threads and sharded result cache, the
# metrics registry, the sampled-simulation window fan-out, and the
# two-phase traceback fan-out with its cached alignments).
# Keeps the pool, loop, cache, registry, and sampler race-free.
#
# Usage: scripts/check_tsan.sh [build-dir]   (default: build-tsan)
set -eu

BUILD_DIR="${1:-build-tsan}"

cmake -B "$BUILD_DIR" -S "$(dirname "$0")/.." -DBIOARCH_TSAN=ON
cmake --build "$BUILD_DIR" -j --target sweep_test kernels_test \
    serve_test obs_test index_test router_test sim_sample_test \
    traceback_test serve_traceback_test
ctest --test-dir "$BUILD_DIR" \
    -L 'sweep_test|kernels_test|serve_test|obs_test|index_test|router_test|sim_sample_test|traceback_test|serve_traceback_test' \
    --output-on-failure -j
