#!/usr/bin/env sh
# CLI contract of bioarch-characterize: conflicting or malformed
# argument combinations fail fast with a one-line error on stderr
# and exit status 2 (registered as the `characterize_cli` ctest).
#
# Usage: check_characterize_cli.sh path/to/bioarch-characterize
set -u

BIN="${1:?usage: check_characterize_cli.sh path/to/bioarch-characterize}"
fails=0

# check_rejects <description> <args...>: expect exit 2 + stderr.
check_rejects() {
    desc="$1"
    shift
    err=$("$BIN" "$@" 2>&1 >/dev/null)
    rc=$?
    if [ "$rc" -ne 2 ]; then
        echo "FAIL: $desc: exit $rc, expected 2"
        fails=1
    elif [ -z "$err" ]; then
        echo "FAIL: $desc: no error message on stderr"
        fails=1
    else
        echo "ok: $desc -> exit 2: $err"
    fi
}

check_rejects "--trace + --workload conflict" \
    --trace whatever.trc --workload blast
check_rejects "--workload + --trace (reversed)" \
    --workload ssearch34 --trace whatever.trc
check_rejects "--sweep + --trace conflict" \
    --sweep --trace whatever.trc
check_rejects "zero sample window" \
    --workload blast --sample-window 0
check_rejects "zero sample period" \
    --workload blast --sample-period 0
check_rejects "negative sample warmup" \
    --workload blast --sample-warmup -5
check_rejects "sample window exceeding period" \
    --workload blast --sample-window 1000 --sample-period 100
check_rejects "missing sample flag value" \
    --workload blast --sample-window
check_rejects "unknown option" --frobnicate
check_rejects "unknown workload" --workload nope
check_rejects "missing option value" --workload
check_rejects "no arguments at all" # usage -> exit 2

if ! "$BIN" --help >/dev/null 2>&1; then
    echo "FAIL: --help should exit 0"
    fails=1
fi

if [ "$fails" -eq 0 ]; then
    echo "characterize CLI checks passed"
fi
exit "$fails"
